"""Metrics registry: instrument semantics and event folding."""

import pytest

from repro.obs.metrics import (
    FRESHNESS_EDGES,
    LATENCY_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RunMetrics,
    freeze_labels,
)
from repro.obs.trace import TraceEvent, TraceRecorder


class TestFreezeLabels:
    def test_none_and_empty(self):
        assert freeze_labels(None) == ()
        assert freeze_labels({}) == ()

    def test_sorted_and_stringified(self):
        assert freeze_labels({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))


class TestCounter:
    def test_inc(self):
        c = Counter("n", ())
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("n", ()).inc(-1)


class TestGauge:
    def test_last_value_and_series(self):
        g = Gauge("g", ())
        assert g.value == 0.0
        g.set(1.0, 0.25)
        g.set(2.0, 0.75)
        assert g.value == 0.75
        assert g.as_dict()["samples"] == 2


class TestHistogram:
    def test_bucketization_and_cumulative(self):
        h = Histogram("h", (), edges=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        # bisect_left: value == edge lands in that edge's bucket.
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.cumulative() == [2, 3, 4, 5]
        d = h.as_dict()
        assert d["count"] == 5
        assert d["sum"] == pytest.approx(106.0)
        assert d["min"] == 0.5
        assert d["max"] == 100.0

    def test_empty_has_null_min_max(self):
        d = Histogram("h", (), edges=(1.0,)).as_dict()
        assert d["count"] == 0
        assert d["min"] is None
        assert d["max"] is None

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", (), edges=())
        with pytest.raises(ValueError):
            Histogram("h", (), edges=(2.0, 1.0))


class TestMetricsRegistry:
    def test_get_or_create_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("c", {"k": "v"})
        b = reg.counter("c", {"k": "v"})
        assert a is b
        assert len(reg) == 1

    def test_distinct_labels_distinct_instruments(self):
        reg = MetricsRegistry()
        assert reg.counter("c", {"k": "1"}) is not reg.counter("c", {"k": "2"})
        assert len(reg) == 2

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x", (1.0,))

    def test_edge_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", (1.0, 3.0))

    def test_snapshot_keys_and_kinds(self):
        reg = MetricsRegistry()
        reg.counter("a_total", {"k": "v"}).inc()
        reg.gauge("b").set(0.0, 1.0)
        snap = reg.snapshot()
        assert snap["a_total{k=v}"]["kind"] == "counter"
        assert snap["a_total{k=v}"]["value"] == 1.0
        assert snap["b"]["kind"] == "gauge"

    def test_snapshot_order_is_deterministic(self):
        reg = MetricsRegistry()
        reg.counter("z")
        reg.counter("a")
        assert list(reg.snapshot()) == ["a", "z"]


def _event(kind, fields, time=1.0):
    return TraceEvent(time, kind, fields)


class TestRunMetricsFolding:
    def test_query_outcome_success(self):
        rm = RunMetrics()
        rm.observe_event(
            _event(
                "query.outcome",
                {
                    "txn": 1,
                    "outcome": "success",
                    "arrival": 0.5,
                    "latency": 0.3,
                    "freshness": 0.9,
                    "restarts": 2,
                },
            )
        )
        snap = rm.snapshot()
        assert snap["repro_query_outcomes_total{outcome=success}"]["value"] == 1.0
        assert snap["repro_query_latency_seconds"]["count"] == 1
        assert snap["repro_query_freshness_ratio"]["count"] == 1
        assert snap["repro_query_restarts_total"]["value"] == 2.0

    def test_rejected_outcome_skips_histograms(self):
        rm = RunMetrics()
        rm.observe_event(
            _event(
                "query.outcome",
                {
                    "txn": 1,
                    "outcome": "rejected",
                    "arrival": 0.5,
                    "latency": 0.0,
                    "freshness": None,
                    "restarts": 0,
                },
            )
        )
        snap = rm.snapshot()
        assert snap["repro_query_outcomes_total{outcome=rejected}"]["value"] == 1.0
        assert "repro_query_latency_seconds" not in snap
        assert "repro_query_freshness_ratio" not in snap

    def test_lock_preempt_counts_victims(self):
        rm = RunMetrics()
        rm.observe_event(
            _event(
                "lock.preempt",
                {"txn": 9, "item": 2, "update": True, "victims": [1, 3, 5]},
            )
        )
        snap = rm.snapshot()
        assert snap["repro_lock_preemptions_total"]["value"] == 1.0
        assert snap["repro_lock_preempt_victims_total"]["value"] == 3.0

    def test_control_window_gauges_components(self):
        rm = RunMetrics()
        rm.observe_event(
            _event(
                "control.window",
                {
                    "usm": 0.42,
                    "samples": 20,
                    "signals": ["LAC"],
                    "c_flex": 1.25,
                    "update_load": 0.3,
                    "degraded_items": 4,
                    "ticket_threshold": -0.5,
                    "S": 0.8,
                    "R": 0.1,
                },
                time=10.0,
            )
        )
        snap = rm.snapshot()
        assert snap["repro_usm"]["value"] == 0.42
        assert snap["repro_c_flex"]["value"] == 1.25
        assert snap["repro_degraded_items"]["value"] == 4.0
        assert snap["repro_usm_component{component=S}"]["value"] == 0.8
        assert snap["repro_usm_component{component=R}"]["value"] == 0.1

    def test_control_window_none_usm_is_skipped(self):
        rm = RunMetrics()
        rm.observe_event(
            _event(
                "control.window",
                {
                    "usm": None,
                    "samples": 0,
                    "signals": [],
                    "c_flex": 1.0,
                    "update_load": 0.0,
                    "degraded_items": 0,
                    "ticket_threshold": 0.0,
                },
            )
        )
        assert "repro_usm" not in rm.snapshot()

    def test_counters_per_kind(self):
        rm = RunMetrics()
        rm.observe_event(_event("query.admit", {"txn": 1, "deadline": 1.0, "items": 2}))
        rm.observe_event(
            _event(
                "admission.decision",
                {"txn": 1, "admitted": True, "reason": "ok", "est": 0.0,
                 "endangered": 0, "c_flex": 1.0},
            )
        )
        rm.observe_event(
            _event("lock.wait", {"txn": 1, "item": 2, "update": False, "holders": [3]})
        )
        rm.observe_event(
            _event(
                "update.apply",
                {"item": 2, "txn": 5, "on_demand": True, "period": 2.0},
            )
        )
        rm.observe_event(_event("update.drop", {"item": 2, "period": 2.0}))
        rm.observe_event(
            _event(
                "modulation.change",
                {"item": 2, "direction": "degrade", "old_period": 2.0,
                 "new_period": 2.4},
            )
        )
        rm.observe_event(
            _event(
                "control.allocate",
                {"dominant": "R", "signals": ["LAC"], "usm": 0.1, "samples": 5,
                 "cost_R": 0.2},
            )
        )
        snap = rm.snapshot()
        assert snap["repro_query_admitted_total"]["value"] == 1.0
        assert snap["repro_admission_decisions_total{reason=ok}"]["value"] == 1.0
        assert snap["repro_lock_waits_total"]["value"] == 1.0
        assert snap["repro_updates_applied_total{on_demand=true}"]["value"] == 1.0
        assert snap["repro_updates_dropped_total"]["value"] == 1.0
        assert (
            snap["repro_modulation_changes_total{direction=degrade}"]["value"] == 1.0
        )
        assert snap["repro_control_allocations_total{dominant=R}"]["value"] == 1.0

    def test_recorder_drives_sink(self):
        rm = RunMetrics()
        rec = TraceRecorder(capacity=4, metrics=rm)
        rec.query_admit(0.1, 1, 1.0, 2)
        rec.query_admit(0.2, 2, 1.0, 2)
        assert rm.snapshot()["repro_query_admitted_total"]["value"] == 2.0

    def test_edges_are_ascending(self):
        assert list(LATENCY_EDGES) == sorted(LATENCY_EDGES)
        assert list(FRESHNESS_EDGES) == sorted(FRESHNESS_EDGES)
