"""Dashboard contracts: state model, HTTP/SSE server, static export.

The server tests bind to an ephemeral localhost port and use stdlib
``urllib`` only; nothing here talks to the network proper.
"""

import json
import urllib.request

import pytest

from repro.core.usm import PenaltyProfile
from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.sweep import run_grid
from repro.obs.config import ObsConfig
from repro.obs.dash import (
    DashboardServer,
    DashboardState,
    _downsample,
    render_static_html,
)

SMOKE = SCALES["smoke"]
OBS_KEEP = ObsConfig(enabled=True, keep_events=True, metrics=False)


@pytest.fixture(scope="module")
def report():
    return run_experiment(
        ExperimentConfig(
            policy="unit", update_trace="med-unif", seed=7, scale=SMOKE,
            obs=OBS_KEEP,
        )
    )


@pytest.fixture()
def fed_state(report):
    state = DashboardState(title="test sweep")
    state.on_progress(("unit", "med-unif", "naive"), report, 1, 2)
    state.on_progress(("unit", "low-unif", "naive"), report, 2, 2)
    return state


class TestDownsample:
    def test_short_series_untouched(self):
        assert _downsample([1.0, 2.0], 60) == [1.0, 2.0]

    def test_long_series_capped_keeps_endpoints(self):
        series = [float(i) for i in range(500)]
        down = _downsample(series, 60)
        assert len(down) <= 60
        assert down[0] == 0.0
        assert down[-1] == 499.0


class TestDashboardState:
    def test_snapshot_shape(self, fed_state):
        snap = fed_state.snapshot()
        assert snap["title"] == "test sweep"
        assert snap["done"] == 2 and snap["total"] == 2
        assert snap["complete"] is True
        assert len(snap["cells"]) == 2
        cell = snap["cells"][0]
        assert cell["policy"] == "unit"
        assert cell["trace"] == "med-unif"
        assert "usm" in cell and "ratios" in cell and "throughput" in cell
        # keep_events=True: waits attribution rides along.
        assert "waits" in cell
        assert not cell["spans_partial"]

    def test_snapshot_json_is_valid_json(self, fed_state):
        parsed = json.loads(fed_state.snapshot_json())
        assert parsed["done"] == 2

    def test_sse_subscribers_receive_frames_and_close(self, report):
        state = DashboardState()
        subscriber = state.subscribe()
        state.on_progress(("unit", "med-unif", "naive"), report, 1, 1)
        frame = subscriber.get(timeout=1)
        assert json.loads(frame)["done"] == 1
        state.close()
        assert subscriber.get(timeout=1) is None
        state.unsubscribe(subscriber)

    def test_runs_without_kept_events(self):
        """metrics/keep_events off: the cell payload degrades gracefully."""
        plain = run_experiment(
            ExperimentConfig(
                policy="unit", update_trace="med-unif", seed=7, scale=SMOKE,
            )
        )
        state = DashboardState()
        state.on_progress(("unit", "med-unif", "naive"), plain, 1, 1)
        cell = state.snapshot()["cells"][0]
        assert "waits" not in cell
        assert "usm_series" not in cell


class TestStaticExport:
    def test_placeholders_substituted(self, fed_state):
        html = render_static_html(fed_state)
        assert "__STATE__" not in html and "__LIVE__" not in html
        assert "const LIVE = false" in html
        assert "test sweep" in html

    def test_embedded_state_parses(self, fed_state):
        html = render_static_html(fed_state)
        marker = "let STATE = "
        start = html.index(marker) + len(marker)
        end = html.index(";\n", start)
        parsed = json.loads(html[start:end].replace("<\\/", "</"))
        assert len(parsed["cells"]) == 2


class TestDashboardServer:
    def test_routes(self, fed_state):
        server = DashboardServer(fed_state, port=0).start()
        try:
            html = urllib.request.urlopen(server.url + "/", timeout=5).read()
            assert b"const LIVE = true" in html
            snap = json.loads(
                urllib.request.urlopen(server.url + "/state", timeout=5).read()
            )
            assert snap["done"] == 2
            stream = urllib.request.urlopen(server.url + "/events", timeout=5)
            line = stream.readline().decode("utf-8")
            assert line.startswith("data: ")
            assert json.loads(line[len("data: "):])["total"] == 2
            stream.close()
            missing = urllib.request.urlopen(
                server.url + "/nope", timeout=5
            )
        except urllib.error.HTTPError as exc:
            assert exc.code == 404
        finally:
            server.stop()

    def test_stop_is_idempotent(self, fed_state):
        server = DashboardServer(fed_state, port=0).start()
        server.stop()
        server.stop()

    def test_dropped_connection_releases_subscriber(self, report):
        """Regression: a client that connects to /events and then drops
        the connection must not leave its subscriber queue registered —
        long sweeps would otherwise accumulate one dead queue (and one
        blocked handler thread) per disconnect."""
        import socket
        import time

        state = DashboardState(title="drop test")
        server = DashboardServer(state, port=0).start()
        try:
            conn = socket.create_connection((server.host, server.port), timeout=5)
            conn.sendall(b"GET /events HTTP/1.1\r\nHost: x\r\n\r\n")
            # Wait for the replayed initial frame: subscription is live.
            conn.settimeout(5)
            received = b""
            while b"data: " not in received:
                chunk = conn.recv(65536)
                assert chunk, "stream closed before the initial frame"
                received += chunk
            assert state.subscriber_count == 1
            # Drop the connection abruptly (no clean shutdown), then
            # publish frames until the handler's next write notices.
            conn.close()
            deadline = time.monotonic() + 10.0
            while state.subscriber_count and time.monotonic() < deadline:
                state.on_progress(("unit", "med-unif", "naive"), report, 1, 2)
                time.sleep(0.05)
            assert state.subscriber_count == 0
        finally:
            server.stop()


class TestSubscriberQueueBound:
    def test_publish_to_stuck_subscriber_drops_oldest(self, report):
        """A subscriber that never drains must stay bounded, and the
        newest frame must survive the eviction (frames are full-state
        snapshots, so dropping stale ones is lossless)."""
        from repro.obs.dash import _SUBSCRIBER_QUEUE_FRAMES

        state = DashboardState()
        subscriber = state.subscribe()
        total = _SUBSCRIBER_QUEUE_FRAMES + 25
        for done in range(1, total + 1):
            state.on_progress(("unit", "med-unif", "naive"), report, done, total)
        assert subscriber.qsize() <= _SUBSCRIBER_QUEUE_FRAMES
        last = None
        while not subscriber.empty():
            last = subscriber.get_nowait()
        assert json.loads(last)["done"] == total
        state.unsubscribe(subscriber)

    def test_close_reaches_stuck_subscriber(self, report):
        """The end-of-stream sentinel must land even on a full queue."""
        from repro.obs.dash import _SUBSCRIBER_QUEUE_FRAMES

        state = DashboardState()
        subscriber = state.subscribe()
        for done in range(_SUBSCRIBER_QUEUE_FRAMES + 5):
            state.on_progress(("unit", "med-unif", "naive"), report, done + 1, 999)
        state.close()
        frames = []
        while not subscriber.empty():
            frames.append(subscriber.get_nowait())
        assert frames[-1] is None


class TestSweepIntegration:
    def test_run_grid_feeds_dashboard(self):
        state = DashboardState(title="grid")
        base = ExperimentConfig(
            policy="unit", update_trace="low-unif", seed=5, scale=SMOKE,
            obs=OBS_KEEP,
        )
        reports = run_grid(
            ("unit",),
            ("low-unif",),
            (PenaltyProfile.naive(),),
            SMOKE,
            seed=5,
            base=base,
            dashboard=state,
        )
        snap = state.snapshot()
        assert snap["complete"]
        assert len(snap["cells"]) == len(reports) == 1
        html = render_static_html(state)
        assert "low-unif" in html

    def test_dashboard_chains_with_progress_callback(self):
        state = DashboardState()
        seen = []
        base = ExperimentConfig(
            policy="unit", update_trace="low-unif", seed=5, scale=SMOKE,
        )
        run_grid(
            ("unit",),
            ("low-unif",),
            (PenaltyProfile.naive(),),
            SMOKE,
            seed=5,
            base=base,
            dashboard=state,
            progress_callback=lambda key, report, done, total: seen.append(key),
        )
        assert seen == [("unit", "low-unif", "naive")]
        assert state.snapshot()["done"] == 1
