"""Tests for the analysis subpackage (latency + timeline)."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.latency import LatencySummary, latency_summary, percentile, slack_ratios
from repro.analysis.timeline import Timeline, TimelineProbe, TimelineSample
from repro.core.baselines import ImuPolicy
from repro.core.unit import UnitConfig, UnitPolicy
from repro.core.usm import PenaltyProfile
from repro.db.items import ItemTable
from repro.db.server import ARRIVAL_EVENT_PRIORITY, Server, ServerConfig
from repro.db.transactions import Outcome, QueryRecord, QueryTransaction
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def record(outcome, response, deadline=1.0):
    return QueryRecord(
        txn_id=1,
        arrival=0.0,
        items=(0,),
        exec_time=0.1,
        relative_deadline=deadline,
        freshness_req=0.9,
        outcome=outcome,
        finish_time=response,
    )


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_property_bounded_and_monotone(self, values):
        p10 = percentile(values, 10)
        p90 = percentile(values, 90)
        assert min(values) <= p10 <= p90 <= max(values)


class TestLatencySummary:
    def test_per_outcome_split(self):
        records = [
            record(Outcome.SUCCESS, 0.1),
            record(Outcome.SUCCESS, 0.3),
            record(Outcome.DEADLINE_MISS, 1.0),
            record(Outcome.REJECTED, 0.0),
        ]
        summary = latency_summary(records)
        assert summary[Outcome.SUCCESS].count == 2
        assert summary[Outcome.SUCCESS].mean == pytest.approx(0.2)
        assert summary[Outcome.DEADLINE_MISS].p50 == pytest.approx(1.0)
        # Pooled excludes rejections.
        assert summary[None].count == 3

    def test_empty_records(self):
        assert latency_summary([]) == {}

    def test_from_values_validation(self):
        with pytest.raises(ValueError):
            LatencySummary.from_values([])

    def test_slack_ratios(self):
        records = [
            record(Outcome.SUCCESS, 0.5, deadline=1.0),
            record(Outcome.DEADLINE_MISS, 1.0, deadline=1.0),
        ]
        assert slack_ratios(records) == [pytest.approx(0.5)]


class TestTimeline:
    def sample(self, t, ok=0):
        return TimelineSample(
            time=t,
            ready_queries=0,
            ready_updates=0,
            busy_query=t * 0.5,
            busy_update=t * 0.25,
            outcomes={Outcome.SUCCESS: ok},
        )

    def test_ordering_enforced(self):
        timeline = Timeline()
        timeline.append(self.sample(1.0))
        with pytest.raises(ValueError):
            timeline.append(self.sample(0.5))

    def test_series_and_deltas(self):
        timeline = Timeline()
        timeline.append(self.sample(1.0, ok=2))
        timeline.append(self.sample(2.0, ok=5))
        assert timeline.series("time") == [1.0, 2.0]
        assert timeline.outcome_deltas(Outcome.SUCCESS) == [2, 3]

    def test_utilization(self):
        sample = self.sample(4.0)
        assert sample.utilization_so_far == pytest.approx(0.75)


class TestTimelineProbe:
    def run_probed(self, policy):
        sim = Simulator()
        items = ItemTable.uniform(4, ideal_period=2.0, update_exec_time=0.2)
        server = Server(sim, items, policy, ServerConfig())
        for i in range(20):
            txn = QueryTransaction(
                txn_id=server.next_txn_id(),
                arrival=0.5 * i,
                exec_time=0.1,
                items=(i % 4,),
                relative_deadline=1.0,
            )
            sim.schedule(
                0.5 * i, lambda q=txn: server.submit_query(q),
                priority=ARRIVAL_EVENT_PRIORITY,
            )
        probe = TimelineProbe(server, interval=2.0, horizon=10.0)
        probe.start()
        sim.run(until=11.0)
        return probe.timeline

    def test_probe_samples_plain_policy(self):
        timeline = self.run_probed(ImuPolicy())
        assert len(timeline) == 5
        assert timeline.samples[0].c_flex is None  # IMU has no knobs

    def test_probe_captures_unit_knobs(self):
        policy = UnitPolicy(
            UnitConfig(profile=PenaltyProfile.naive(), control_period=1.0),
            RandomStreams(1).stream("lottery"),
        )
        timeline = self.run_probed(policy)
        assert timeline.samples[-1].c_flex is not None
        assert timeline.samples[-1].degraded_items is not None
        assert timeline.samples[-1].ticket_threshold is not None

    def test_probe_validation(self):
        sim = Simulator()
        items = ItemTable.uniform(1, ideal_period=1.0, update_exec_time=0.1)
        server = Server(sim, items, ImuPolicy(), ServerConfig())
        with pytest.raises(ValueError):
            TimelineProbe(server, interval=0.0, horizon=1.0)
