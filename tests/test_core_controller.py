"""Tests for the Load Balancing Controller / Adaptive Allocation
(paper Fig. 2)."""

import random

import pytest

from repro.core.controller import ControlSignal, LoadBalancingController
from repro.core.usm import PenaltyProfile, UsmWindow
from repro.db.transactions import Outcome


def make_lbc(profile=None, window=100.0, min_samples=1, threshold=0.01):
    profile = profile or PenaltyProfile.naive()
    usm_window = UsmWindow(profile, window)
    lbc = LoadBalancingController(
        usm_window, random.Random(0), usm_drop_threshold=threshold, min_samples=min_samples
    )
    return usm_window, lbc


def fill(window, now, outcomes):
    for outcome in outcomes:
        window.record(now, outcome)


class TestAdaptiveAllocation:
    def test_rejections_dominant_loosens_admission(self):
        window, lbc = make_lbc()
        fill(window, 1.0, [Outcome.REJECTED] * 5 + [Outcome.DEADLINE_MISS])
        assert lbc.allocate(1.0) == [ControlSignal.LOOSEN_ADMISSION]

    def test_dmf_dominant_degrades_and_tightens(self):
        window, lbc = make_lbc()
        fill(window, 1.0, [Outcome.DEADLINE_MISS] * 5 + [Outcome.REJECTED])
        assert lbc.allocate(1.0) == [
            ControlSignal.DEGRADE_UPDATES,
            ControlSignal.TIGHTEN_ADMISSION,
        ]

    def test_dsf_dominant_upgrades(self):
        window, lbc = make_lbc()
        fill(window, 1.0, [Outcome.DATA_STALE] * 5 + [Outcome.REJECTED])
        assert lbc.allocate(1.0) == [ControlSignal.UPGRADE_UPDATES]

    def test_all_success_no_signals(self):
        window, lbc = make_lbc()
        fill(window, 1.0, [Outcome.SUCCESS] * 10)
        assert lbc.allocate(1.0) == []

    def test_weighted_costs_pick_dominant(self):
        """With non-zero weights the *cost*, not the raw ratio, decides:
        few expensive rejections beat many cheap misses."""
        profile = PenaltyProfile(c_r=1.0, c_fm=0.01, c_fs=0.01)
        window, lbc = make_lbc(profile)
        fill(window, 1.0, [Outcome.REJECTED] * 2 + [Outcome.DEADLINE_MISS] * 8)
        assert lbc.allocate(1.0) == [ControlSignal.LOOSEN_ADMISSION]

    def test_thin_window_defers(self):
        window, lbc = make_lbc(min_samples=10)
        fill(window, 1.0, [Outcome.DEADLINE_MISS] * 3)
        assert lbc.allocate(1.0) == []

    def test_tie_broken_randomly_but_valid(self):
        window, lbc = make_lbc()
        fill(window, 1.0, [Outcome.REJECTED, Outcome.DEADLINE_MISS, Outcome.DATA_STALE])
        signals = lbc.allocate(1.0)
        assert signals in (
            [ControlSignal.LOOSEN_ADMISSION],
            [ControlSignal.DEGRADE_UPDATES, ControlSignal.TIGHTEN_ADMISSION],
            [ControlSignal.UPGRADE_UPDATES],
        )

    def test_signal_counters(self):
        window, lbc = make_lbc()
        fill(window, 1.0, [Outcome.REJECTED] * 3)
        lbc.allocate(1.0)
        assert lbc.allocations == 1
        assert lbc.signal_counts[ControlSignal.LOOSEN_ADMISSION] == 1


class TestDropTrigger:
    def test_no_drop_before_first_allocation(self):
        window, lbc = make_lbc()
        fill(window, 1.0, [Outcome.DEADLINE_MISS] * 3)
        assert not lbc.check_drop(1.0)

    def test_drop_detected_after_degradation(self):
        window, lbc = make_lbc(threshold=0.05)
        fill(window, 1.0, [Outcome.SUCCESS] * 10)
        lbc.allocate(1.0)  # snapshots USM = 1.0
        fill(window, 2.0, [Outcome.DEADLINE_MISS] * 10)
        assert lbc.check_drop(2.0)

    def test_small_wobble_not_a_drop(self):
        window, lbc = make_lbc(threshold=0.2)
        fill(window, 1.0, [Outcome.SUCCESS] * 10)
        lbc.allocate(1.0)
        fill(window, 2.0, [Outcome.DEADLINE_MISS])  # USM 10/11 = 0.909
        assert not lbc.check_drop(2.0)

    def test_invalid_parameters(self):
        window = UsmWindow(PenaltyProfile.naive(), 10.0)
        with pytest.raises(ValueError):
            LoadBalancingController(window, random.Random(0), usm_drop_threshold=0.0)
        with pytest.raises(ValueError):
            LoadBalancingController(
                window, random.Random(0), usm_drop_threshold=0.1, min_samples=0
            )
