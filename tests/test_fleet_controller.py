"""Tests for the global fleet coordinator."""

import pytest

from repro.fleet.controller import Directive, EpochSummary, GlobalCoordinator
from repro.obs.trace import FLEET_REBALANCE, TraceRecorder


def summary(shard, dmf=0, dsf=0, rejected=0, success=10, time=20.0, c_flex=1.0):
    return EpochSummary(
        shard_id=shard,
        time=time,
        deltas={"success": success, "rejected": rejected, "dmf": dmf, "dsf": dsf},
        c_flex=c_flex,
    )


class TestSingleShardNeutrality:
    """The load-bearing property: one shard -> exact no-ops, always.

    The 1-shard fleet's digest identity with the single-server runner
    rests on the coordinator never touching a lone shard's knobs."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(),
            dict(dmf=5, dsf=3, rejected=4, success=1),
            dict(success=0),  # idle epoch
        ],
    )
    def test_lone_shard_gets_exact_noop(self, kwargs):
        coordinator = GlobalCoordinator()
        (directive,) = coordinator.plan([summary(0, **kwargs)])
        assert directive.flex_factor == 1.0
        assert directive.modulate is None
        assert directive.is_noop

    def test_identical_shards_all_noop(self):
        coordinator = GlobalCoordinator()
        directives = coordinator.plan([summary(0, dmf=2), summary(1, dmf=2)])
        assert all(d.is_noop for d in directives)


class TestRebalancing:
    def test_missing_shard_tightened_healthy_shard_untouched(self):
        coordinator = GlobalCoordinator(eta=0.5)
        bad = summary(0, dmf=8, success=2)  # 80% miss
        good = summary(1, dmf=0, success=10)
        d_bad, d_good = coordinator.plan([bad, good])
        assert d_bad.flex_factor > 1.0  # admit less on the missing shard
        assert d_good.flex_factor < 1.0  # give slack back
        assert d_bad.modulate == "degrade"
        assert d_good.modulate == "upgrade"

    def test_rejecting_shard_relaxed(self):
        coordinator = GlobalCoordinator(eta=0.5, modulate_threshold=10.0)
        rejecting = summary(0, rejected=8, success=2)
        other = summary(1, success=10)
        d_rej, d_other = coordinator.plan([rejecting, other])
        assert d_rej.flex_factor < 1.0  # over-rejecting: loosen admission
        assert d_other.flex_factor > 1.0

    def test_factor_clamped(self):
        coordinator = GlobalCoordinator(eta=100.0, flex_lo=0.5, flex_hi=2.0)
        d_bad, d_good = coordinator.plan(
            [summary(0, dmf=10, success=0), summary(1, success=10)]
        )
        assert d_bad.flex_factor == 2.0
        assert d_good.flex_factor == 0.5

    def test_directives_sorted_by_shard(self):
        coordinator = GlobalCoordinator()
        directives = coordinator.plan(
            [summary(2, dmf=9), summary(0), summary(1, dmf=1)]
        )
        assert [d.shard_id for d in directives] == [0, 1, 2]

    def test_empty_plan(self):
        assert GlobalCoordinator().plan([]) == []


class TestObsAndValidation:
    def test_rebalance_events_only_for_non_noops(self):
        recorder = TraceRecorder()
        coordinator = GlobalCoordinator(eta=0.5, recorder=recorder)
        coordinator.plan([summary(0, dmf=8, success=2), summary(1)])
        coordinator.plan([summary(0), summary(1)])  # identical -> no-ops
        events = [e for e in recorder.events() if e.kind == FLEET_REBALANCE]
        assert len(events) == 2  # the first plan's two directives only
        fields = events[0].as_dict()
        assert fields["shard"] == 0
        assert fields["flex_factor"] > 1.0

    def test_from_dict_roundtrip(self):
        raw = {
            "shard": 3,
            "time": 40.0,
            "deltas": {"success": 5, "rejected": 1, "dmf": 2, "dsf": 0},
            "c_flex": 1.5,
        }
        parsed = EpochSummary.from_dict(raw)
        assert parsed.shard_id == 3
        assert parsed.miss_ratio == pytest.approx(2 / 8)
        assert parsed.reject_ratio == pytest.approx(1 / 8)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            GlobalCoordinator(flex_lo=1.5)
        with pytest.raises(ValueError):
            GlobalCoordinator(eta=-1.0)

    def test_noop_predicate(self):
        assert Directive(shard_id=0).is_noop
        assert not Directive(shard_id=0, flex_factor=1.1).is_noop
        assert not Directive(shard_id=0, modulate="degrade").is_noop
