"""JSON-safety helpers in the report layer.

Regression: an empty :class:`OnlineStats` carries ±inf min/max
sentinels, and ``json.dumps`` emits those as the bare tokens
``Infinity``/``-Infinity`` — invalid JSON to strict parsers.  Anything
headed for a report file must pass through :func:`json_sanitize` /
:func:`stats_dict` and come out ``null``.
"""

import json
import math

from repro.experiments.report import json_sanitize, stats_dict
from repro.sim.stats import OnlineStats


class TestJsonSanitize:
    def test_non_finite_floats_become_none(self):
        assert json_sanitize(float("inf")) is None
        assert json_sanitize(float("-inf")) is None
        assert json_sanitize(float("nan")) is None

    def test_finite_values_pass_through(self):
        assert json_sanitize(1.5) == 1.5
        assert json_sanitize(0) == 0
        assert json_sanitize("inf") == "inf"
        assert json_sanitize(None) is None
        assert json_sanitize(True) is True

    def test_recurses_into_containers(self):
        payload = {
            "a": [1.0, float("inf"), {"b": float("nan")}],
            "c": (float("-inf"), 2),
        }
        clean = json_sanitize(payload)
        assert clean == {"a": [1.0, None, {"b": None}], "c": [None, 2]}
        # The result is strictly-valid JSON (no Infinity/NaN tokens).
        text = json.dumps(clean, allow_nan=False)
        assert "Infinity" not in text

    def test_empty_stats_would_leak_without_sanitize(self):
        """Documents the failure mode this module guards against."""
        raw = {"min": OnlineStats().minimum, "max": OnlineStats().maximum}
        assert math.isinf(raw["min"])
        assert "Infinity" in json.dumps(raw)  # the bug
        assert json.dumps(json_sanitize(raw)) == '{"min": null, "max": null}'


class TestStatsDict:
    def test_empty_stats_serialize_with_nulls(self):
        d = stats_dict(OnlineStats())
        assert d["count"] == 0
        assert d["min"] is None
        assert d["max"] is None
        # Strict JSON round-trip must succeed.
        assert json.loads(json.dumps(d, allow_nan=False))["min"] is None

    def test_populated_stats(self):
        stats = OnlineStats()
        for v in (1.0, 3.0, 2.0):
            stats.add(v)
        d = stats_dict(stats)
        assert d["count"] == 3
        assert d["min"] == 1.0
        assert d["max"] == 3.0
        assert d["mean"] == 2.0
