"""Per-rule fixtures for the simflow whole-program rules (SF001-SF004).

Each fixture lays out a miniature ``repro`` tree on disk (the loader
anchors module names at the last ``repro`` directory, so
``tmp/repro/sim/engine.py`` loads as ``repro.sim.engine``) and asserts
which rules fire — and, just as importantly, which don't.
"""

from pathlib import Path
from textwrap import dedent

import pytest

from repro.lint.flow import run_flow

# -- harness ----------------------------------------------------------------


def build_tree(tmp_path: Path, files: dict) -> Path:
    """Write ``{"sim/engine.py": source}`` style dicts under tmp/repro."""
    root = tmp_path / "repro"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dedent(source), encoding="utf-8")
    return root


def flow_violations(tmp_path: Path, files: dict, select=None):
    root = build_tree(tmp_path, files)
    violations, _files = run_flow([root], select=select)
    return violations


def rules_fired(violations):
    return {v.rule_id for v in violations}


RNG = """\
    "RandomStreams fixture."


    class RandomStreams:
        def __init__(self, master_seed: int) -> None:
            self.master_seed = master_seed

        def stream(self, name: str):
            return name
"""

ENGINE = """\
    "Simulator fixture."


    class Simulator:
        def __init__(self) -> None:
            self.now = 0.0

        def schedule(self, delay, callback=None):
            return delay
"""

EVENTS = """\
    "Event fixture."


    class Event:
        def __init__(self, time: float) -> None:
            self.time = time
            self.cancelled = False
"""


# -- SF001: stream provenance ------------------------------------------------


class TestStreamProvenance:
    def test_literal_names_are_clean(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "sim/rng.py": RNG,
                "core/policy.py": """\
                    "policy."
                    from repro.sim.rng import RandomStreams


                    def make(streams: RandomStreams):
                        return streams.stream("unit-lottery")
                """,
            },
            select=["SF001"],
        )
        assert violations == []

    def test_fstring_template_names_are_clean(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "sim/rng.py": RNG,
                "workload/updates.py": """\
                    "updates."
                    from repro.sim.rng import RandomStreams


                    def make(streams: RandomStreams, spec):
                        return streams.stream(f"update-{spec.name}-exec")
                """,
            },
            select=["SF001"],
        )
        assert violations == []

    def test_unresolvable_name_is_flagged(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "sim/rng.py": RNG,
                "core/policy.py": """\
                    "policy."
                    from repro.sim.rng import RandomStreams


                    def compute_name(k):
                        return str(k) + str(k)


                    def make(streams: RandomStreams, k):
                        return streams.stream(compute_name(k))
                """,
            },
            select=["SF001"],
        )
        assert rules_fired(violations) == {"SF001"}
        assert "cannot be resolved" in violations[0].message

    def test_cross_component_collision_is_flagged(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "sim/rng.py": RNG,
                "core/policy.py": """\
                    "policy."
                    from repro.sim.rng import RandomStreams


                    def make(streams: RandomStreams):
                        return streams.stream("shared-name")
                """,
                "db/server.py": """\
                    "server."
                    from repro.sim.rng import RandomStreams


                    def make(streams: RandomStreams):
                        return streams.stream("shared-name")
                """,
            },
            select=["SF001"],
        )
        assert rules_fired(violations) == {"SF001"}
        assert all("shared-name" in v.message for v in violations)
        assert len(violations) == 2  # both ends of the collision

    def test_same_component_reuse_is_allowed(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "sim/rng.py": RNG,
                "core/a.py": """\
                    "a."
                    from repro.sim.rng import RandomStreams


                    def make(streams: RandomStreams):
                        return streams.stream("core-shared")
                """,
                "core/b.py": """\
                    "b."
                    from repro.sim.rng import RandomStreams


                    def make(streams: RandomStreams):
                        return streams.stream("core-shared")
                """,
            },
            select=["SF001"],
        )
        assert violations == []

    def test_name_resolves_through_caller_parameter(self, tmp_path):
        """A name passed down a call chain resolves to the caller's
        literal — no false positive on the indirection."""
        violations = flow_violations(
            tmp_path,
            {
                "sim/rng.py": RNG,
                "core/policy.py": """\
                    "policy."
                    from repro.sim.rng import RandomStreams


                    def _fetch(streams: RandomStreams, name):
                        return streams.stream(name)


                    def make(streams: RandomStreams):
                        return _fetch(streams, "lottery-draws")
                """,
            },
            select=["SF001"],
        )
        assert violations == []

    def test_unrelated_stream_method_is_ignored(self, tmp_path):
        """``.stream`` on a non-RandomStreams receiver is not a site."""
        violations = flow_violations(
            tmp_path,
            {
                "sim/rng.py": RNG,
                "db/values.py": """\
                    "values."


                    class ValueLog:
                        def stream(self, item_id):
                            return item_id


                    def tail(log: ValueLog, item_id):
                        return log.stream(item_id)
                """,
            },
            select=["SF001"],
        )
        assert violations == []


# -- SF002: clock-domain taint ----------------------------------------------


class TestClockDomain:
    def test_wall_clock_into_sim_call_is_flagged(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "sim/engine.py": ENGINE,
                "experiments/run.py": """\
                    "run."
                    import time

                    from repro.sim.engine import Simulator


                    def run():
                        sim = Simulator()
                        started = time.perf_counter()
                        sim.schedule(started)
                """,
            },
            select=["SF002"],
        )
        assert rules_fired(violations) == {"SF002"}
        assert "schedule" in violations[0].message

    def test_taint_survives_arithmetic_and_assignment(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "sim/engine.py": ENGINE,
                "experiments/run.py": """\
                    "run."
                    import time

                    from repro.sim.engine import Simulator


                    def run():
                        sim = Simulator()
                        t0 = time.perf_counter()
                        elapsed = (time.perf_counter() - t0) * 1000.0
                        sim.schedule(elapsed + 1.0)
                """,
            },
            select=["SF002"],
        )
        assert rules_fired(violations) == {"SF002"}

    def test_taint_crosses_function_returns(self, tmp_path):
        """Interprocedural: a helper that returns wall time taints its
        callers' use sites."""
        violations = flow_violations(
            tmp_path,
            {
                "sim/engine.py": ENGINE,
                "experiments/run.py": """\
                    "run."
                    import time

                    from repro.sim.engine import Simulator


                    def _stamp():
                        return time.perf_counter()


                    def run():
                        sim = Simulator()
                        sim.schedule(_stamp())
                """,
            },
            select=["SF002"],
        )
        assert rules_fired(violations) == {"SF002"}

    def test_wall_metadata_report_fields_are_sanctioned(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "experiments/report.py": """\
                    "report."


                    class SimulationReport:
                        def __init__(self, mean_latency=0.0, wall_seconds=0.0,
                                     phase_seconds=None) -> None:
                            self.mean_latency = mean_latency
                            self.wall_seconds = wall_seconds
                            self.phase_seconds = phase_seconds
                """,
                "experiments/run.py": """\
                    "run."
                    import time

                    from repro.experiments.report import SimulationReport


                    def run():
                        t0 = time.perf_counter()
                        return SimulationReport(wall_seconds=time.perf_counter() - t0)
                """,
            },
            select=["SF002"],
        )
        assert violations == []

    def test_other_report_fields_reject_wall_values(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "experiments/report.py": """\
                    "report."


                    class SimulationReport:
                        def __init__(self, mean_latency=0.0, wall_seconds=0.0) -> None:
                            self.mean_latency = mean_latency
                            self.wall_seconds = wall_seconds
                """,
                "experiments/run.py": """\
                    "run."
                    import time

                    from repro.experiments.report import SimulationReport


                    def run():
                        t0 = time.perf_counter()
                        return SimulationReport(mean_latency=time.perf_counter() - t0)
                """,
            },
            select=["SF002"],
        )
        assert rules_fired(violations) == {"SF002"}
        assert "mean_latency" in violations[0].message

    def test_wall_value_stored_on_sim_object_is_flagged(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "sim/engine.py": ENGINE,
                "experiments/run.py": """\
                    "run."
                    import time

                    from repro.sim.engine import Simulator


                    def run():
                        sim = Simulator()
                        sim.now = time.perf_counter()
                """,
            },
            select=["SF002"],
        )
        assert rules_fired(violations) == {"SF002"}

    def test_untainted_flow_is_clean(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "sim/engine.py": ENGINE,
                "experiments/run.py": """\
                    "run."
                    import time

                    from repro.sim.engine import Simulator


                    def run(config_delay: float):
                        sim = Simulator()
                        wall = time.perf_counter()  # legal: stays in experiments
                        sim.schedule(config_delay)
                        return wall
                """,
            },
            select=["SF002"],
        )
        assert violations == []


# -- SF003: cross-process capture --------------------------------------------


class TestCrossProcessCapture:
    def test_lambda_payload_is_flagged(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "experiments/sweep.py": """\
                    "sweep."
                    from multiprocessing import Pool


                    def run(configs):
                        with Pool(2) as pool:
                            return pool.map(lambda c: c, configs)
                """,
            },
            select=["SF003"],
        )
        assert rules_fired(violations) == {"SF003"}
        assert "lambda" in violations[0].message.lower()

    def test_module_level_function_payload_is_clean(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "experiments/sweep.py": """\
                    "sweep."
                    from multiprocessing import Pool


                    def _run_one(config):
                        return config


                    def run(configs):
                        with Pool(2) as pool:
                            return pool.map(_run_one, configs)
                """,
            },
            select=["SF003"],
        )
        assert violations == []

    def test_nested_function_payload_is_flagged(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "experiments/sweep.py": """\
                    "sweep."
                    from multiprocessing import Pool


                    def run(configs):
                        def _run_one(config):
                            return config

                        with Pool(2) as pool:
                            return pool.map(_run_one, configs)
                """,
            },
            select=["SF003"],
        )
        assert rules_fired(violations) == {"SF003"}

    def test_mutation_after_submit_is_flagged(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "experiments/sweep.py": """\
                    "sweep."
                    from multiprocessing import Pool


                    def _run_one(config):
                        return config


                    def run(configs):
                        with Pool(2) as pool:
                            results = pool.map_async(_run_one, configs)
                            configs.append("late")  # raced with the workers
                            return results.get()
                """,
            },
            select=["SF003"],
        )
        assert rules_fired(violations) == {"SF003"}
        assert "mutated after being shipped" in violations[0].message

    def test_worker_reachable_global_mutation_is_flagged(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "experiments/sweep.py": """\
                    "sweep."
                    from multiprocessing import Pool

                    _COUNTER = 0


                    def _run_one(config):
                        global _COUNTER
                        _COUNTER += 1
                        return config


                    def run(configs):
                        with Pool(2) as pool:
                            return pool.map(_run_one, configs)
                """,
            },
            select=["SF003"],
        )
        assert rules_fired(violations) == {"SF003"}
        assert "_COUNTER" in violations[0].message

    def test_non_pool_receiver_is_ignored(self, tmp_path):
        """`.map` on something that isn't pool-ish is not a submission."""
        violations = flow_violations(
            tmp_path,
            {
                "analysis/tables.py": """\
                    "tables."


                    class Grid:
                        def map(self, fn, rows):
                            return [fn(r) for r in rows]


                    def render(grid: Grid, rows):
                        return grid.map(lambda r: r, rows)
                """,
            },
            select=["SF003"],
        )
        assert violations == []


# -- SF004: engine-owned escapes ---------------------------------------------


class TestEngineEscape:
    def test_event_mutation_via_leaked_alias_is_flagged(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "sim/events.py": EVENTS,
                "core/policy.py": """\
                    "policy."
                    from repro.sim.events import Event


                    def tweak(entry: Event):
                        entry.time = 5.0
                """,
            },
            select=["SF004"],
        )
        assert rules_fired(violations) == {"SF004"}
        assert "Event.time" in violations[0].message

    def test_event_construction_outside_sim_is_flagged(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "sim/events.py": EVENTS,
                "db/server.py": """\
                    "server."
                    from repro.sim.events import Event


                    def fake(now: float):
                        return Event(now + 1.0)
                """,
            },
            select=["SF004"],
        )
        assert rules_fired(violations) == {"SF004"}
        assert "Simulator.schedule" in violations[0].message

    def test_engine_modules_may_mutate(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "sim/events.py": EVENTS,
                "sim/engine.py": """\
                    "engine."
                    from repro.sim.events import Event


                    def cancel(event: Event):
                        event.cancelled = True
                """,
            },
            select=["SF004"],
        )
        assert violations == []

    def test_provenance_tracks_through_assignment(self, tmp_path):
        """The SL005 gap this rule closes: mutation through an alias
        bound from a constructor, not an annotation."""
        violations = flow_violations(
            tmp_path,
            {
                "sim/events.py": EVENTS,
                "core/policy.py": """\
                    "policy."
                    from repro.sim.events import Event


                    def sneak():
                        entry = Event(0.0)
                        entry.time = 9.0
                """,
            },
            select=["SF004"],
        )
        # Both the foreign construction and the aliased mutation fire.
        assert rules_fired(violations) == {"SF004"}
        assert len(violations) == 2


# -- suppression interaction --------------------------------------------------


class TestFlowSuppression:
    def test_per_line_suppression_silences_a_flow_finding(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "sim/events.py": EVENTS,
                "core/policy.py": """\
                    "policy."
                    from repro.sim.events import Event


                    def tweak(entry: Event):
                        entry.time = 5.0  # simlint: disable=SF004 -- fixture
                """,
            },
            select=["SF004"],
        )
        assert violations == []

    def test_file_level_suppression_silences_a_flow_finding(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "sim/events.py": EVENTS,
                "core/policy.py": """\
                    "policy."
                    # simlint: disable-file=SF004 -- fixture
                    from repro.sim.events import Event


                    def tweak(entry: Event):
                        entry.time = 5.0
                """,
            },
            select=["SF004"],
        )
        assert violations == []

    def test_sl_suppression_does_not_hide_sf_findings(self, tmp_path):
        violations = flow_violations(
            tmp_path,
            {
                "sim/events.py": EVENTS,
                "core/policy.py": """\
                    "policy."
                    from repro.sim.events import Event


                    def tweak(entry: Event):
                        entry.time = 5.0  # simlint: disable=SL005 -- wrong layer
                """,
            },
            select=["SF004"],
        )
        assert rules_fired(violations) == {"SF004"}
