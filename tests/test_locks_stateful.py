"""Stateful property testing of the 2PL-HP lock manager.

A hypothesis rule machine drives random interleavings of request /
release / cancel operations across transactions of both classes and
checks the safety invariants after every step:

* never two incompatible holders on one item;
* the holder/held_by maps agree;
* every waiter is outranked by a holder or an earlier waiter (the
  no-deadlock argument);
* a transaction waits on at most one item.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.db.locks import LockManager, LockMode, LockStatus
from repro.db.transactions import QueryTransaction, UpdateTransaction

N_ITEMS = 3


class LockMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.locks = LockManager()
        self.txns = {}
        self.next_id = 1
        self.live = set()  # txn ids neither released nor aborted

    def _new_txn(self, is_update, horizon):
        txn_id = self.next_id
        self.next_id += 1
        if is_update:
            txn = UpdateTransaction(
                txn_id=txn_id,
                arrival=0.0,
                exec_time=0.1,
                item_id=0,
                period=horizon,
            )
        else:
            txn = QueryTransaction(
                txn_id=txn_id,
                arrival=0.0,
                exec_time=0.1,
                items=(0,),
                relative_deadline=horizon,
            )
        self.txns[txn_id] = txn
        self.live.add(txn_id)
        return txn

    @rule(
        is_update=st.booleans(),
        horizon=st.floats(min_value=0.1, max_value=100.0),
        item=st.integers(min_value=0, max_value=N_ITEMS - 1),
    )
    def request(self, is_update, horizon, item):
        txn = self._new_txn(is_update, horizon)
        mode = LockMode.WRITE if is_update else LockMode.READ
        while True:
            result = self.locks.request(txn, item, mode)
            if result.status is not LockStatus.CONFLICT:
                break
            for victim in result.victims:
                self.locks.release_all(victim)
                self.live.discard(victim.txn_id)

    @rule(pick=st.integers(min_value=0, max_value=10_000))
    def release_some_live_txn(self, pick):
        if not self.live:
            return
        txn_id = sorted(self.live)[pick % len(self.live)]
        self.locks.release_all(self.txns[txn_id])
        self.live.discard(txn_id)

    @rule(pick=st.integers(min_value=0, max_value=10_000))
    def cancel_some_wait(self, pick):
        waiting = [t for t in self.live if self.locks.is_waiting(self.txns[t])]
        if not waiting:
            return
        txn_id = sorted(waiting)[pick % len(waiting)]
        self.locks.cancel_wait(self.txns[txn_id])

    @invariant()
    def no_incompatible_holders(self):
        for item in range(N_ITEMS):
            modes = [mode for _, mode in self.locks.holders_of(item)]
            writers = sum(1 for mode in modes if mode is LockMode.WRITE)
            assert writers <= 1
            if writers == 1:
                assert len(modes) == 1

    @invariant()
    def held_by_map_agrees(self):
        for item in range(N_ITEMS):
            for txn_id, _ in self.locks.holders_of(item):
                assert item in self.locks.held_items(self.txns[txn_id])

    @invariant()
    def waiters_are_outranked(self):
        for item in range(N_ITEMS):
            holder_keys = [
                self.txns[txn_id].priority_key()
                for txn_id, _ in self.locks.holders_of(item)
            ]
            waiter_ids = self.locks.waiters_of(item)
            for position, waiter_id in enumerate(waiter_ids):
                key = self.txns[waiter_id].priority_key()
                earlier = [
                    self.txns[other].priority_key()
                    for other in waiter_ids[:position]
                ]
                assert any(k < key for k in holder_keys + earlier), (
                    f"waiter {waiter_id} on item {item} is not outranked"
                )

    @invariant()
    def single_wait_per_txn(self):
        for txn_id in self.live:
            txn = self.txns[txn_id]
            waited = self.locks.waited_item(txn)
            if waited is not None:
                assert txn_id in self.locks.waiters_of(waited)


TestLockMachine = LockMachine.TestCase
TestLockMachine.settings = settings(max_examples=40, stateful_step_count=30)
