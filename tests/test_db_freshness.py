"""Tests for the freshness metrics (paper Eq. 1 and alternatives)."""

import pytest
from hypothesis import given, strategies as st

from repro.db.freshness import (
    DivergenceFreshness,
    LagFreshness,
    TimeFreshness,
    query_freshness,
)
from repro.db.items import DataItem


def item_with_drops(drops: int) -> DataItem:
    item = DataItem(item_id=0, ideal_period=10.0, update_exec_time=0.1)
    for k in range(drops):
        item.record_arrival(float(k + 1))
        item.record_drop()
    return item


class TestLagFreshness:
    def test_fresh_item_is_one(self):
        assert LagFreshness().item_freshness(item_with_drops(0), 5.0) == 1.0

    def test_eq1_values(self):
        metric = LagFreshness()
        assert metric.item_freshness(item_with_drops(1), 5.0) == pytest.approx(0.5)
        assert metric.item_freshness(item_with_drops(3), 5.0) == pytest.approx(0.25)

    @given(st.integers(min_value=0, max_value=100))
    def test_property_monotone_decreasing_in_drops(self, drops):
        metric = LagFreshness()
        f1 = metric.item_freshness(item_with_drops(drops), 0.0)
        f2 = metric.item_freshness(item_with_drops(drops + 1), 0.0)
        assert 0.0 < f2 < f1 <= 1.0

    def test_single_drop_fails_ninety_percent_requirement(self):
        """The paper's 90% requirement means one drop is already fatal."""
        assert LagFreshness().item_freshness(item_with_drops(1), 0.0) < 0.9


class TestTimeFreshness:
    def test_no_pending_update_is_fresh_regardless_of_age(self):
        metric = TimeFreshness(half_life=10.0)
        item = item_with_drops(0)
        assert metric.item_freshness(item, 1e9) == 1.0

    def test_decays_with_age_once_stale(self):
        """Age is measured from the earliest *pending* arrival."""
        metric = TimeFreshness(half_life=10.0)
        item = DataItem(item_id=0, ideal_period=10.0, update_exec_time=0.1)
        item.record_arrival(0.0)
        item.record_drop()
        assert metric.item_freshness(item, 10.0) == pytest.approx(0.5)
        assert metric.item_freshness(item, 20.0) == pytest.approx(0.25)

    def test_continuous_at_the_dropped_arrival(self):
        """Regression: a long-idle item must not cliff-drop the instant
        its next update is dropped.  The decay clock starts at the
        pending arrival (freshness 1.0 there), not at the last applied
        update (which would make age jump to the whole idle stretch)."""
        metric = TimeFreshness(half_life=10.0)
        item = DataItem(item_id=0, ideal_period=10.0, update_exec_time=0.1)
        seq = item.record_arrival(0.0)
        item.apply_update(seq, 0.0)  # applied immediately; then idle for ages
        idle_until = 1e6
        assert metric.item_freshness(item, idle_until) == 1.0
        item.record_arrival(idle_until)
        item.record_drop()
        # Continuous at the arrival instant...
        assert metric.item_freshness(item, idle_until) == pytest.approx(1.0)
        # ...and decaying from it, not from last_applied_time=0.
        assert metric.item_freshness(item, idle_until + 10.0) == pytest.approx(0.5)

    def test_second_drop_keeps_the_earliest_anchor(self):
        metric = TimeFreshness(half_life=10.0)
        item = DataItem(item_id=0, ideal_period=10.0, update_exec_time=0.1)
        item.record_arrival(0.0)
        item.record_drop()
        item.record_arrival(5.0)
        item.record_drop()
        # Staleness dates from the *first* unapplied arrival at t=0.
        assert metric.item_freshness(item, 10.0) == pytest.approx(0.5)

    def test_apply_clears_the_anchor(self):
        metric = TimeFreshness(half_life=10.0)
        item = DataItem(item_id=0, ideal_period=10.0, update_exec_time=0.1)
        item.record_arrival(0.0)
        item.record_drop()
        seq = item.record_arrival(50.0)
        item.apply_update(seq, 50.0)  # catches up: pending drops absorbed
        assert item.first_pending_time is None
        assert metric.item_freshness(item, 100.0) == 1.0

    def test_invalid_half_life(self):
        with pytest.raises(ValueError):
            TimeFreshness(half_life=0.0)


class TestDivergenceFreshness:
    def test_linear_drift(self):
        metric = DivergenceFreshness(drift_per_update=0.2)
        assert metric.item_freshness(item_with_drops(2), 0.0) == pytest.approx(0.6)

    def test_floored_above_zero(self):
        metric = DivergenceFreshness(drift_per_update=0.5)
        assert metric.item_freshness(item_with_drops(10), 0.0) > 0.0


class TestQueryFreshness:
    def test_min_aggregation(self):
        fresh = item_with_drops(0)
        stale = item_with_drops(1)
        stale.item_id = 1
        value = query_freshness([fresh, stale], 0.0, LagFreshness())
        assert value == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            query_freshness([], 0.0, LagFreshness())

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=8))
    def test_property_min_over_items(self, drop_counts):
        items = []
        for index, drops in enumerate(drop_counts):
            item = item_with_drops(drops)
            item.item_id = index
            items.append(item)
        metric = LagFreshness()
        expected = min(metric.item_freshness(item, 0.0) for item in items)
        assert query_freshness(items, 0.0, metric) == pytest.approx(expected)

    def test_describe_strings(self):
        assert "lag" in LagFreshness().describe()
        assert "time" in TimeFreshness(5.0).describe()
        assert "divergence" in DivergenceFreshness().describe()
