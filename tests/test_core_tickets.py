"""Tests for ticket-value maintenance (paper Eqs. 6-8)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.tickets import TicketBook, sigmoid_increase


class TestSigmoid:
    def test_average_exec_time_gives_half(self):
        assert sigmoid_increase(1.0, 1.0) == pytest.approx(0.5)

    def test_expensive_update_increases_more(self):
        cheap = sigmoid_increase(0.5, 1.0)
        pricey = sigmoid_increase(2.0, 1.0)
        assert 0.0 < cheap < 0.5 < pricey < 1.0

    def test_extreme_gaps_saturate(self):
        assert sigmoid_increase(1000.0, 0.0) == 1.0
        assert sigmoid_increase(0.0, 1000.0) == 0.0

    @given(
        st.floats(min_value=0, max_value=100), st.floats(min_value=0, max_value=100)
    )
    def test_property_range(self, ue, avg):
        assert 0.0 <= sigmoid_increase(ue, avg) <= 1.0


class TestTicketDynamics:
    def test_query_access_decreases_ticket(self):
        book = TicketBook(4)
        book.on_query_access(0, cpu_utilization=0.3)
        assert book.ticket(0) == pytest.approx(-0.3)

    def test_update_increases_ticket(self):
        book = TicketBook(4)
        book.on_update(0, update_exec_time=1.0)
        # First observation: ue_avg == ue, sigmoid gap 0 -> +0.5
        assert book.ticket(0) == pytest.approx(0.5)

    def test_eq8_forgetting_recurrence(self):
        book = TicketBook(2, forgetting=0.9)
        book.on_update(0, update_exec_time=1.0)  # T = 0*0.9 + 0.5
        first = book.ticket(0)
        book.on_query_access(0, cpu_utilization=0.2)  # T = 0.5*0.9 - 0.2
        assert book.ticket(0) == pytest.approx(first * 0.9 - 0.2)

    def test_forgetting_only_applies_per_event_on_that_item(self):
        book = TicketBook(2, forgetting=0.5)
        book.on_update(0, update_exec_time=1.0)
        before = book.ticket(1)
        book.on_update(0, update_exec_time=1.0)  # events on item 0 only
        assert book.ticket(1) == before == 0.0

    def test_running_average_exec_time(self):
        book = TicketBook(2)
        book.on_update(0, update_exec_time=1.0)
        book.on_update(1, update_exec_time=3.0)
        assert book.average_update_exec_time == pytest.approx(2.0)

    def test_negative_utilization_rejected(self):
        book = TicketBook(2)
        with pytest.raises(ValueError):
            book.on_query_access(0, cpu_utilization=-0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            TicketBook(0)
        with pytest.raises(ValueError):
            TicketBook(4, forgetting=0.0)


class TestLotteryCoupling:
    def test_negative_tickets_have_zero_probability(self):
        """The zero-clamp deviation: query-dominated items are never
        picked (see DESIGN.md)."""
        book = TicketBook(3)
        book.on_query_access(0, cpu_utilization=0.5)  # ticket -0.5
        book.on_update(1, update_exec_time=1.0)  # ticket +0.5
        rng = random.Random(0)
        draws = {book.sample_victim(rng) for _ in range(100)}
        assert draws == {1}

    def test_no_positive_ticket_means_no_victim(self):
        book = TicketBook(3)
        book.on_query_access(0, cpu_utilization=0.5)
        assert book.sample_victim(random.Random(0)) is None

    def test_update_dominated_items_proportional(self):
        book = TicketBook(2)
        book.on_update(0, update_exec_time=1.0)
        for _ in range(4):
            book.on_update(1, update_exec_time=1.0)
        weights = book.shifted_weights()
        assert weights[1] > weights[0] > 0

    def test_threshold_walk_exposes_protected_items(self):
        book = TicketBook(2)
        book.on_query_access(0, cpu_utilization=1.0)  # item 0: ticket -1.0
        book.on_query_access(1, cpu_utilization=0.2)  # item 1: ticket -0.2
        assert book.sample_victim(random.Random(0)) is None
        book.lower_threshold(0.5)  # tau -0.5: item 1 (-0.2) now exposed
        assert book.sample_victim(random.Random(0)) == 1
        book.lower_threshold(0.6)  # tau floored at the minimum (-1.0)
        assert book.threshold == pytest.approx(-1.0)
        # Item 0 sits exactly at tau -> weight 0; item 1 remains eligible.
        draws = {book.sample_victim(random.Random(k)) for k in range(20)}
        assert draws == {1}

    def test_threshold_floor_is_min_ticket(self):
        book = TicketBook(2)
        book.on_query_access(0, cpu_utilization=0.4)
        book.lower_threshold(100.0)
        assert book.threshold == pytest.approx(-0.4)

    def test_raise_threshold_ceiling_is_zero(self):
        book = TicketBook(2)
        book.on_query_access(0, cpu_utilization=0.4)
        book.lower_threshold(0.4)
        book.raise_threshold(5.0)
        assert book.threshold == 0.0

    def test_threshold_step_validation(self):
        book = TicketBook(2)
        with pytest.raises(ValueError):
            book.lower_threshold(0.0)
        with pytest.raises(ValueError):
            book.raise_threshold(-1.0)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.sampled_from(["query", "update"]),
            ),
            min_size=1,
            max_size=80,
        )
    )
    def test_property_weights_track_clamped_tickets(self, events):
        book = TicketBook(8)
        for item_id, kind in events:
            if kind == "query":
                book.on_query_access(item_id, cpu_utilization=0.25)
            else:
                book.on_update(item_id, update_exec_time=1.0)
        weights = book.shifted_weights()
        for item_id in range(8):
            expected = max(0.0, book.ticket(item_id) - book.threshold)
            assert weights[item_id] == pytest.approx(expected, abs=1e-9)
