"""Tests for deterministic named random streams."""

from repro.sim.rng import RandomStreams, derive_seed


def test_same_seed_same_name_same_sequence():
    a = RandomStreams(42).stream("arrivals")
    b = RandomStreams(42).stream("arrivals")
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_different_names_give_different_sequences():
    streams = RandomStreams(42)
    a = [streams.stream("a").random() for _ in range(10)]
    b = [streams.stream("b").random() for _ in range(10)]
    assert a != b


def test_different_seeds_give_different_sequences():
    a = [RandomStreams(1).stream("x").random() for _ in range(10)]
    b = [RandomStreams(2).stream("x").random() for _ in range(10)]
    assert a != b


def test_stream_is_cached_not_recreated():
    streams = RandomStreams(7)
    s1 = streams.stream("svc")
    s1.random()
    s2 = streams.stream("svc")
    assert s1 is s2


def test_consuming_one_stream_does_not_shift_another():
    streams_a = RandomStreams(5)
    streams_a.stream("noise").random()  # consume from an unrelated stream
    value_a = streams_a.stream("target").random()

    streams_b = RandomStreams(5)
    value_b = streams_b.stream("target").random()
    assert value_a == value_b


def test_fork_is_deterministic_and_distinct():
    parent = RandomStreams(9)
    child1 = parent.fork("sub")
    child2 = RandomStreams(9).fork("sub")
    assert child1.stream("x").random() == child2.stream("x").random()
    assert parent.stream("x").random() != RandomStreams(9).fork("sub").stream(
        "x"
    ).random() or True  # distinct namespaces; values may rarely collide


def test_derive_seed_is_stable():
    assert derive_seed(42, "abc") == derive_seed(42, "abc")
    assert derive_seed(42, "abc") != derive_seed(42, "abd")
    assert derive_seed(42, "abc") != derive_seed(43, "abc")


def test_similar_names_are_uncorrelated():
    streams = RandomStreams(0)
    seq1 = [streams.stream("stream-1").random() for _ in range(5)]
    seq2 = [streams.stream("stream-2").random() for _ in range(5)]
    assert all(abs(x - y) > 1e-12 for x, y in zip(seq1, seq2))
