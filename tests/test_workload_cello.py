"""Tests for the synthetic cello99a-like trace generator."""

import pytest

from repro.sim.rng import RandomStreams
from repro.workload.cello import CelloConfig, access_histogram, generate_cello_trace


def small_config(**overrides):
    defaults = dict(
        horizon=500.0,
        n_items=64,
        query_utilization=0.5,
        mean_service=0.05,
    )
    defaults.update(overrides)
    return CelloConfig(**defaults)


def test_records_within_horizon_and_sorted():
    records = generate_cello_trace(small_config(), RandomStreams(1))
    assert records
    arrivals = [r.arrival for r in records]
    assert arrivals == sorted(arrivals)
    assert arrivals[-1] <= 500.0
    assert all(0 <= r.region < 64 for r in records)
    assert all(r.service_time > 0 for r in records)


def test_deterministic_given_seed():
    a = generate_cello_trace(small_config(), RandomStreams(7))
    b = generate_cello_trace(small_config(), RandomStreams(7))
    assert a == b


def test_different_seeds_differ():
    a = generate_cello_trace(small_config(), RandomStreams(1))
    b = generate_cello_trace(small_config(), RandomStreams(2))
    assert a != b


def test_utilization_matches_target():
    config = small_config(horizon=5000.0)
    records = generate_cello_trace(config, RandomStreams(3))
    demand = sum(r.service_time for r in records)
    assert demand / config.horizon == pytest.approx(0.5, rel=0.15)


def test_mean_rate_derivation():
    config = small_config()
    assert config.mean_arrival_rate == pytest.approx(10.0)


def test_histogram_is_skewed():
    config = small_config(horizon=2000.0, zipf_skew=1.3)
    records = generate_cello_trace(config, RandomStreams(5))
    histogram = access_histogram(records, config.n_items)
    assert sum(histogram) == len(records)
    top = max(histogram)
    mean = sum(histogram) / len(histogram)
    assert top > 5 * mean  # heavy skew: hottest region way above average


def test_zero_skew_spreads_accesses():
    config = small_config(horizon=2000.0, zipf_skew=0.0)
    records = generate_cello_trace(config, RandomStreams(5))
    histogram = access_histogram(records, config.n_items)
    top = max(histogram)
    mean = sum(histogram) / len(histogram)
    assert top < 2.5 * mean


def test_config_validation():
    with pytest.raises(ValueError):
        small_config(horizon=0.0)
    with pytest.raises(ValueError):
        small_config(n_items=0)
    with pytest.raises(ValueError):
        small_config(mean_service=0.0)
