"""Attribution-layer contracts: percentiles, breakdowns, the ledger.

The headline assertion is **exact reconciliation**: the USM-loss
ledger computed from spans must equal the report's Eq. 5 components
float-for-float (same counts, same ``count / total * weight``
operation order), for every penalty profile.
"""

import pytest

from repro.core.usm import TABLE2_PROFILES, PenaltyProfile
from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.obs.attrib import (
    aggregate_by_load,
    attrib_report,
    latency_slack_percentiles,
    ledger_table,
    load_level,
    percentile,
    percentile_table,
    usm_loss_ledger,
    wait_breakdown,
    wait_table,
)
from repro.obs.config import ObsConfig
from repro.obs.spans import build_spans

SMOKE = SCALES["smoke"]
OBS_KEEP = ObsConfig(enabled=True, keep_events=True)


def _run(seed=7, policy="unit", trace="med-unif", profile=None):
    config = ExperimentConfig(
        policy=policy, update_trace=trace, seed=seed, scale=SMOKE,
        profile=profile or PenaltyProfile.naive(), obs=OBS_KEEP,
    )
    report = run_experiment(config)
    return report, build_spans(report.obs_events).spans


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_single_value(self):
        assert percentile([4.0], 0.99) == 4.0

    def test_linear_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == pytest.approx(2.5)
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        # rank (n-1)*0.9 = 2.7 -> 3.0 + 0.7*(4.0-3.0)
        assert percentile(values, 0.9) == pytest.approx(3.7)

    def test_rows_over_real_spans(self):
        _, spans = _run()
        rows = latency_slack_percentiles(spans)
        completed = [s for s in spans if s.admit is not None]
        assert rows["latency"]["count"] == len(completed)
        assert rows["latency"]["p50"] <= rows["latency"]["p90"]
        assert rows["latency"]["p90"] <= rows["latency"]["p99"]


class TestWaitBreakdown:
    def test_shares_sum_to_one(self):
        _, spans = _run()
        breakdown = wait_breakdown(spans)
        assert sum(breakdown["shares"].values()) == pytest.approx(1.0)
        assert breakdown["completed"] + breakdown["rejected"] == len(spans)

    def test_totals_match_span_waits_exactly(self):
        _, spans = _run()
        breakdown = wait_breakdown(spans)
        total_span_time = sum(s.duration for s in spans if s.admit is not None)
        assert sum(breakdown["totals"].values()) == pytest.approx(
            total_span_time, rel=1e-12
        )


class TestLedgerReconciliation:
    @pytest.mark.parametrize(
        "profile",
        [PenaltyProfile.naive(), TABLE2_PROFILES["gt1-high-cr"],
         TABLE2_PROFILES["lt1-high-cfs"]],
        ids=lambda p: p.name or "naive",
    )
    def test_ledger_equals_report_components(self, profile):
        report, spans = _run(profile=profile)
        ledger = usm_loss_ledger(spans, profile)
        assert ledger["total"] == report.queries_submitted
        assert ledger["components"] == report.components  # exact floats
        assert ledger["usm"] == report.usm

    def test_cause_counts_cover_all_losses(self):
        report, spans = _run()
        ledger = usm_loss_ledger(spans, PenaltyProfile.naive())
        for component in ("R", "F_m", "F_s"):
            assert sum(ledger["causes"][component].values()) == (
                ledger["counts"][component]
            ), component
        assert ledger["causes"]["S"] == {}


class TestAggregateByLoad:
    def test_load_level_prefix(self):
        assert load_level("med-unif") == "med"
        assert load_level("low-skew") == "low"
        assert load_level("high-neg") == "high"

    def test_unrecognized_prefix_routes_to_other(self):
        """Regression: custom scenario names used to become their own
        spurious buckets (or collide: 'medium-x' pooled as 'medium');
        they must all land in the explicit 'other' bucket."""
        assert load_level("custom") == "other"
        assert load_level("medium-crazy") == "other"
        assert load_level("") == "other"

    def test_unrecognized_name_warns_once(self, caplog, monkeypatch):
        import logging

        from repro.obs import attrib

        attrib._warned_levels.discard("oddball-trace")
        # A CLI test may have run configure_logging, which turns off
        # propagation on the "repro" logger; caplog's handler lives on
        # the root logger, so restore propagation for this test.
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        with caplog.at_level(logging.WARNING, logger=attrib._log.name):
            assert load_level("oddball-trace") == "other"
            assert load_level("oddball-trace") == "other"
        warnings = [
            rec for rec in caplog.records if "oddball-trace" in rec.getMessage()
        ]
        assert len(warnings) == 1

    def test_other_bucket_pools_in_aggregate(self):
        _, low = _run(trace="low-unif")
        cells = {
            ("unit", "low-unif", "naive"): low,
            ("unit", "scenario-x", "naive"): low,
            ("unit", "scenario-y", "naive"): low,
        }
        pooled = aggregate_by_load(cells, PenaltyProfile.naive())
        assert sorted(pooled) == ["low", "other"]
        assert pooled["other"]["cells"] == [
            "unit/scenario-x/naive",
            "unit/scenario-y/naive",
        ]
        assert pooled["other"]["ledger"]["total"] == 2 * len(low)

    def test_pools_by_trace_prefix(self):
        _, low = _run(trace="low-unif")
        _, med = _run(trace="med-unif")
        cells = {
            ("unit", "low-unif", "naive"): low,
            ("unit", "med-unif", "naive"): med,
        }
        pooled = aggregate_by_load(cells, PenaltyProfile.naive())
        assert sorted(pooled) == ["low", "med"]
        assert pooled["low"]["cells"] == ["unit/low-unif/naive"]
        assert pooled["low"]["ledger"]["total"] == len(low)
        assert pooled["med"]["ledger"]["total"] == len(med)


class TestRendering:
    def test_tables_render_without_error(self):
        _, spans = _run()
        report = attrib_report(spans, PenaltyProfile.naive())
        assert "queued" in wait_table(report["waits"])
        assert "p99" in percentile_table(report["percentiles"])
        text = ledger_table(report["ledger"])
        assert "F_m" in text and "USM=" in text

    def test_empty_span_set_renders(self):
        report = attrib_report([], PenaltyProfile.naive())
        assert report["ledger"]["total"] == 0
        assert report["percentiles"]["latency"]["p50"] is None
        assert "latency" in percentile_table(report["percentiles"])
        assert "USM=" in ledger_table(report["ledger"])
