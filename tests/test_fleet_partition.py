"""Tests for the fleet item partitioner."""

import pytest

from repro.fleet.partition import STRATEGIES, build_partition


class TestPlacement:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_every_item_has_a_primary(self, strategy):
        part = build_partition(64, 4, strategy=strategy)
        assert len(part.primary) == 64
        assert all(0 <= p < 4 for p in part.primary)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_no_shard_is_empty(self, strategy):
        part = build_partition(16, 5, strategy=strategy)
        owned = {part.primary[g] for g in range(16)}
        assert owned == set(range(5))

    def test_block_strategy_is_contiguous(self):
        part = build_partition(10, 3, strategy="block")
        assert list(part.primary) == [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_mod_strategy_stripes(self):
        part = build_partition(6, 3, strategy="mod")
        assert list(part.primary) == [0, 1, 2, 0, 1, 2]

    def test_single_shard_owns_everything(self):
        part = build_partition(8, 1)
        assert set(part.primary) == {0}
        assert part.hosted_items(0) == list(range(8))

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_deterministic(self, strategy):
        a = build_partition(100, 7, replication=3, strategy=strategy)
        b = build_partition(100, 7, replication=3, strategy=strategy)
        assert a == b


class TestReplication:
    def test_host_sets_have_k_distinct_shards(self):
        part = build_partition(32, 4, replication=3)
        for item in range(32):
            hosts = part.hosts[item]
            assert len(hosts) == 3
            assert len(set(hosts)) == 3
            assert hosts[0] == part.primary[item]

    def test_replication_clamped_by_fleet_width(self):
        part = build_partition(8, 2, replication=5)
        assert all(len(hosts) == 2 for hosts in part.hosts)

    def test_replicas_are_clockwise_successors(self):
        part = build_partition(12, 4, replication=2, strategy="mod")
        for item in range(12):
            primary = part.primary[item]
            assert part.replica_shards(item) == ((primary + 1) % 4,)

    def test_hosted_items_includes_replicas(self):
        part = build_partition(8, 4, replication=2, strategy="mod")
        # Shard 1 hosts its own primaries (1, 5) and replicas of shard
        # 0's primaries (0, 4).
        assert part.hosted_items(1) == [0, 1, 4, 5]


class TestValidation:
    def test_more_shards_than_items_rejected(self):
        with pytest.raises(ValueError):
            build_partition(3, 4)

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            build_partition(8, 0)

    def test_zero_replication_rejected(self):
        with pytest.raises(ValueError):
            build_partition(8, 2, replication=0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            build_partition(8, 2, strategy="random")
