"""Tests for trace perturbation (the workload-shaping injectors)."""

import pytest

from repro.faults import FaultScenario, FlashCrowd, HotspotShift, UpdateStorm
from repro.sim.rng import RandomStreams
from repro.workload.perturb import (
    ExplicitUpdateTrace,
    perturb_query_trace,
    perturb_update_trace,
)
from repro.workload.queries import QuerySpec, QueryTrace
from repro.workload.updates import ItemUpdateSpec, UpdateTrace

HORIZON = 100.0


def make_query_trace(n=50):
    """n queries, one per second, round-robin over 4 items."""
    queries = [
        QuerySpec(
            arrival=float(i),
            items=(i % 4,),
            exec_time=0.1,
            relative_deadline=1.0,
            freshness_req=0.9,
        )
        for i in range(n)
    ]
    return QueryTrace(name="t", horizon=HORIZON, n_items=4, queries=queries)


def make_update_trace():
    items = [
        ItemUpdateSpec(item_id=0, count=10, period=10.0, phase=0.5, exec_time=0.2),
        ItemUpdateSpec(item_id=1, count=5, period=20.0, phase=1.0, exec_time=0.2),
    ]
    return UpdateTrace(name="u", horizon=HORIZON, items=items, target_utilization=0.1)


def in_window(queries, start, end):
    return [q for q in queries if start <= q.arrival < end]


class TestFlashCrowd:
    def test_amplification_multiplies_in_window_queries(self):
        trace = make_query_trace()
        scenario = FaultScenario(
            name="s", flash_crowds=[FlashCrowd(start=10.0, end=30.0, multiplier=3.0)]
        )
        out = perturb_query_trace(trace, scenario, RandomStreams(seed=1))
        base_in = len(in_window(trace.queries, 10.0, 30.0))
        assert len(in_window(out.queries, 10.0, 30.0)) == 3 * base_in
        # Out-of-window queries untouched.
        assert in_window(out.queries, 0.0, 10.0) == in_window(
            trace.queries, 0.0, 10.0
        )
        assert len(out.queries) == len(trace.queries) + 2 * base_in

    def test_thinning_keeps_a_fraction(self):
        trace = make_query_trace()
        scenario = FaultScenario(
            name="s", flash_crowds=[FlashCrowd(start=0.0, end=50.0, multiplier=0.4)]
        )
        out = perturb_query_trace(trace, scenario, RandomStreams(seed=1))
        kept = len(out.queries)
        assert 0 < kept < len(trace.queries)
        # Every survivor is one of the originals.
        assert set(q.arrival for q in out.queries) <= set(
            q.arrival for q in trace.queries
        )

    def test_replicas_stay_inside_the_window(self):
        trace = make_query_trace()
        scenario = FaultScenario(
            name="s", flash_crowds=[FlashCrowd(start=10.0, end=30.0, multiplier=2.0)]
        )
        out = perturb_query_trace(trace, scenario, RandomStreams(seed=3))
        extras = len(out.queries) - len(trace.queries)
        assert extras == len(in_window(trace.queries, 10.0, 30.0))
        assert len(in_window(out.queries, 10.0, 30.0)) == 2 * extras

    def test_sorted_output(self):
        trace = make_query_trace()
        scenario = FaultScenario(
            name="s", flash_crowds=[FlashCrowd(start=5.0, end=45.0, multiplier=2.5)]
        )
        out = perturb_query_trace(trace, scenario, RandomStreams(seed=2))
        arrivals = [q.arrival for q in out.queries]
        assert arrivals == sorted(arrivals)


class TestHotspotShift:
    def test_rotates_only_after_the_shift(self):
        trace = make_query_trace()
        scenario = FaultScenario(
            name="s", hotspot_shifts=[HotspotShift(at=25.0, rotation=1)]
        )
        out = perturb_query_trace(trace, scenario, RandomStreams(seed=1))
        for before, after in zip(trace.queries, out.queries):
            if before.arrival < 25.0:
                assert after.items == before.items
            else:
                assert after.items == tuple(
                    (item + 1) % 4 for item in before.items
                )

    def test_full_rotation_is_a_noop(self):
        trace = make_query_trace()
        scenario = FaultScenario(
            name="s", hotspot_shifts=[HotspotShift(at=0.0, rotation=4)]
        )
        out = perturb_query_trace(trace, scenario, RandomStreams(seed=1))
        assert [q.items for q in out.queries] == [q.items for q in trace.queries]


class TestUpdateStorm:
    def test_no_storm_returns_the_same_object(self):
        trace = make_update_trace()
        scenario = FaultScenario(
            name="s", flash_crowds=[FlashCrowd(start=0.0, end=1.0, multiplier=2.0)]
        )
        assert perturb_update_trace(trace, scenario, RandomStreams(seed=1)) is trace

    def test_storm_densifies_the_window(self):
        trace = make_update_trace()
        scenario = FaultScenario(
            name="s",
            update_storms=[UpdateStorm(start=20.0, end=60.0, period_factor=0.25)],
        )
        out = perturb_update_trace(trace, scenario, RandomStreams(seed=1))
        assert isinstance(out, ExplicitUpdateTrace)
        base_in = [t for t, _ in trace.arrival_events() if 20.0 <= t < 60.0]
        storm_in = [t for t, _ in out.arrival_events() if 20.0 <= t < 60.0]
        # 4x the rate over the window (phase jitter gives +-1 per item).
        assert len(storm_in) > 2 * len(base_in)
        # Outside the window the stream is untouched.
        outside = lambda events: [
            (t, i) for t, i in events if not 20.0 <= t < 60.0
        ]
        assert outside(out.arrival_events()) == outside(trace.arrival_events())

    def test_outage_silences_the_window(self):
        trace = make_update_trace()
        scenario = FaultScenario(
            name="s",
            update_storms=[UpdateStorm(start=20.0, end=60.0, period_factor=0.0)],
        )
        out = perturb_update_trace(trace, scenario, RandomStreams(seed=1))
        assert [t for t, _ in out.arrival_events() if 20.0 <= t < 60.0] == []
        assert out.total_updates() < trace.total_updates()

    def test_per_item_storm_touches_only_that_item(self):
        trace = make_update_trace()
        scenario = FaultScenario(
            name="s",
            update_storms=[
                UpdateStorm(start=0.0, end=HORIZON, period_factor=0.0, item_id=1)
            ],
        )
        out = perturb_update_trace(trace, scenario, RandomStreams(seed=1))
        counts = out.per_item_counts()
        assert counts[1] == 0
        assert counts[0] == trace.per_item_counts()[0]

    def test_explicit_trace_accounting_is_consistent(self):
        trace = make_update_trace()
        scenario = FaultScenario(
            name="s",
            update_storms=[UpdateStorm(start=10.0, end=40.0, period_factor=0.5)],
        )
        out = perturb_update_trace(trace, scenario, RandomStreams(seed=5))
        events = out.arrival_events()
        assert out.total_updates() == len(events)
        assert sum(out.per_item_counts()) == len(events)
        assert out.utilization() == pytest.approx(
            sum(out.items[i].exec_time for _, i in events) / HORIZON
        )
        # Item specs (ideal periods) are preserved — the server's item
        # table semantics do not change because the source misbehaved.
        assert [item.period for item in out.items] == [
            item.period for item in trace.items
        ]


class TestDeterminism:
    def test_same_seed_same_traces(self):
        scenario = FaultScenario(
            name="s",
            flash_crowds=[FlashCrowd(start=10.0, end=40.0, multiplier=2.7)],
            update_storms=[UpdateStorm(start=20.0, end=60.0, period_factor=0.3)],
            hotspot_shifts=[HotspotShift(at=50.0, rotation=2)],
        )
        q1 = perturb_query_trace(make_query_trace(), scenario, RandomStreams(seed=9))
        q2 = perturb_query_trace(make_query_trace(), scenario, RandomStreams(seed=9))
        assert q1.queries == q2.queries
        u1 = perturb_update_trace(make_update_trace(), scenario, RandomStreams(seed=9))
        u2 = perturb_update_trace(make_update_trace(), scenario, RandomStreams(seed=9))
        assert u1.arrival_events() == u2.arrival_events()

    def test_different_seeds_differ(self):
        scenario = FaultScenario(
            name="s",
            flash_crowds=[FlashCrowd(start=10.0, end=40.0, multiplier=2.7)],
        )
        q1 = perturb_query_trace(make_query_trace(), scenario, RandomStreams(seed=9))
        q2 = perturb_query_trace(make_query_trace(), scenario, RandomStreams(seed=10))
        assert q1.queries != q2.queries

    def test_input_traces_are_not_mutated(self):
        trace = make_query_trace()
        arrivals = [q.arrival for q in trace.queries]
        scenario = FaultScenario(
            name="s",
            flash_crowds=[FlashCrowd(start=0.0, end=50.0, multiplier=3.0)],
            hotspot_shifts=[HotspotShift(at=0.0, rotation=1)],
        )
        perturb_query_trace(trace, scenario, RandomStreams(seed=1))
        assert [q.arrival for q in trace.queries] == arrivals
