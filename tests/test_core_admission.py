"""Tests for Query Admission Control (paper Section 3.3)."""

import pytest

from repro.core.admission import FLEX_MAX, FLEX_MIN, AdmissionController
from repro.core.usm import PenaltyProfile
from repro.db.items import ItemTable
from repro.db.policy_api import ServerPolicy
from repro.db.server import Server, ServerConfig
from repro.db.transactions import QueryTransaction, TransactionState, UpdateTransaction
from repro.sim.engine import Simulator


class _Inert(ServerPolicy):
    def admit_query(self, query, server):
        return True

    def should_apply_update(self, item, server):
        return True


def make_server():
    sim = Simulator()
    items = ItemTable.uniform(4, ideal_period=100.0, update_exec_time=0.5)
    return sim, Server(sim, items, _Inert(), ServerConfig())


def queue_query(server, txn_id, deadline, exec_time=0.5):
    txn = QueryTransaction(
        txn_id=txn_id,
        arrival=0.0,
        exec_time=exec_time,
        items=(0,),
        relative_deadline=deadline,
    )
    txn.state = TransactionState.READY
    server.ready.push(txn)
    return txn


def incoming(deadline, exec_time=0.5, txn_id=99):
    return QueryTransaction(
        txn_id=txn_id,
        arrival=0.0,
        exec_time=exec_time,
        items=(0,),
        relative_deadline=deadline,
    )


class TestDeadlineCheck:
    def test_admits_when_idle(self):
        _, server = make_server()
        ac = AdmissionController(PenaltyProfile.naive())
        decision = ac.decide(incoming(deadline=1.0), server)
        assert decision.admitted
        assert decision.est == 0.0

    def test_rejects_when_exec_exceeds_deadline(self):
        _, server = make_server()
        ac = AdmissionController(PenaltyProfile.naive())
        decision = ac.decide(incoming(deadline=0.4, exec_time=0.5), server)
        assert not decision.admitted
        assert decision.reason == "deadline-check"

    def test_est_counts_earlier_deadline_queries_only(self):
        _, server = make_server()
        ac = AdmissionController(PenaltyProfile.naive(), c_flex=1.0)
        queue_query(server, 1, deadline=1.0, exec_time=0.3)
        queue_query(server, 2, deadline=50.0, exec_time=0.3)  # later deadline
        decision = ac.decide(incoming(deadline=10.0, exec_time=0.1), server)
        assert decision.est == pytest.approx(0.3)

    def test_est_counts_update_backlog(self):
        _, server = make_server()
        ac = AdmissionController(PenaltyProfile.naive(), c_flex=1.0)
        update = UpdateTransaction(
            txn_id=5, arrival=0.0, exec_time=0.7, item_id=1, period=10.0
        )
        update.state = TransactionState.READY
        server.ready.push(update)
        decision = ac.decide(incoming(deadline=10.0), server)
        assert decision.est == pytest.approx(0.7)

    def test_c_flex_scales_est(self):
        _, server = make_server()
        queue_query(server, 1, deadline=0.9, exec_time=0.6)
        tight = AdmissionController(PenaltyProfile.naive(), c_flex=2.0)
        loose = AdmissionController(PenaltyProfile.naive(), c_flex=0.1)
        query = incoming(deadline=1.0, exec_time=0.3)
        assert not tight.decide(query, server).admitted  # 2*0.6+0.3 >= 1.0
        assert loose.decide(query, server).admitted  # 0.06+0.3 < 1.0

    def test_update_load_stretches_est_boundedly(self):
        _, server = make_server()
        queue_query(server, 1, deadline=1.0, exec_time=0.4)
        ac = AdmissionController(PenaltyProfile.naive(), c_flex=1.0)
        ac.update_load = 0.99  # raw stretch would be 20x; capped at 2x
        decision = ac.decide(incoming(deadline=2.0, exec_time=0.1), server)
        assert decision.est == pytest.approx(0.8)  # 0.4 * 2.0 cap


class TestEqualDeadlineTies:
    """Equal-deadline ready queries are classified by the full EDF
    tie-break (``priority_key``): each is either ahead of the newcomer
    (in the EST backlog) or behind it (an endangered candidate) —
    never both, never neither."""

    def test_tied_query_ahead_counts_in_est(self):
        _, server = make_server()
        ac = AdmissionController(PenaltyProfile.naive(), c_flex=1.0)
        queue_query(server, 1, deadline=5.0, exec_time=0.3)  # id 1 < 99
        decision = ac.decide(incoming(deadline=5.0, exec_time=0.1), server)
        assert decision.est == pytest.approx(0.3)

    def test_tied_query_ahead_is_not_endangered(self):
        _, server = make_server()
        ac = AdmissionController(PenaltyProfile.naive())
        tied = queue_query(server, 1, deadline=5.0, exec_time=0.3)
        assert ac.endangered_queries(incoming(deadline=5.0), server) == []
        assert tied.state is TransactionState.READY

    def test_tied_query_behind_is_an_endangered_candidate(self):
        _, server = make_server()
        ac = AdmissionController(PenaltyProfile.naive())
        # id 100 > 99: behind the newcomer under EDF, and with only
        # 0.05s of slack the newcomer's 0.1s execution endangers it.
        queue_query(server, 100, deadline=0.35, exec_time=0.3)
        endangered = ac.endangered_queries(
            incoming(deadline=0.35, exec_time=0.1), server
        )
        assert [txn.txn_id for txn in endangered] == [100]

    def test_ties_partition_exactly_once(self):
        """Regression: with every deadline equal, the ready set must
        split cleanly around the newcomer — ids below it in the EST,
        ids above it in the endangered scan, nothing lost."""
        _, server = make_server()
        ac = AdmissionController(PenaltyProfile.naive(), c_flex=1.0)
        for txn_id in (1, 2, 100, 101):
            queue_query(server, txn_id, deadline=1.0, exec_time=0.2)
        newcomer = incoming(deadline=1.0, exec_time=0.5)
        # Ahead: ids 1 and 2 (0.4s of backlog).
        assert ac.earliest_start(newcomer, server) == pytest.approx(0.4)
        # Behind: ids 100 and 101, both endangered by a 0.5s insertion
        # (slacks 0.4 and 0.2).
        endangered = ac.endangered_queries(newcomer, server)
        assert [txn.txn_id for txn in endangered] == [100, 101]


class TestControlSignals:
    def test_tighten_and_loosen_move_ten_percent(self):
        ac = AdmissionController(PenaltyProfile.naive(), c_flex=1.0)
        ac.tighten()
        assert ac.c_flex == pytest.approx(1.1)
        ac.loosen()
        assert ac.c_flex == pytest.approx(0.99)
        assert ac.tighten_signals == 1
        assert ac.loosen_signals == 1

    def test_c_flex_clamped(self):
        ac = AdmissionController(PenaltyProfile.naive(), c_flex=1.0)
        for _ in range(200):
            ac.tighten()
        assert ac.c_flex == FLEX_MAX
        for _ in range(2000):
            ac.loosen()
        assert ac.c_flex == FLEX_MIN


class TestUsmCheck:
    def profile(self):
        return PenaltyProfile(c_r=0.5, c_fm=0.3, c_fs=0.1)

    def test_endangered_detection(self):
        _, server = make_server()
        ac = AdmissionController(self.profile())
        # A later-deadline query with slack smaller than the newcomer's
        # exec time is endangered.
        queue_query(server, 1, deadline=0.62, exec_time=0.5)
        newcomer = incoming(deadline=0.5, exec_time=0.3)
        endangered = ac.endangered_queries(newcomer, server)
        assert [txn.txn_id for txn in endangered] == [1]

    def test_not_endangered_with_ample_slack(self):
        _, server = make_server()
        ac = AdmissionController(self.profile())
        queue_query(server, 1, deadline=10.0, exec_time=0.5)
        newcomer = incoming(deadline=0.5, exec_time=0.3)
        assert ac.endangered_queries(newcomer, server) == []

    def test_already_doomed_not_counted(self):
        """A query whose slack is already negative cannot be 'newly'
        endangered by the admission."""
        _, server = make_server()
        ac = AdmissionController(self.profile())
        queue_query(server, 1, deadline=0.4, exec_time=0.5)  # hopeless already
        newcomer = incoming(deadline=0.3, exec_time=0.2)
        assert ac.endangered_queries(newcomer, server) == []

    def test_usm_check_rejects_when_dmf_cost_exceeds_rejection(self):
        _, server = make_server()
        profile = PenaltyProfile(c_r=0.1, c_fm=0.5, c_fs=0.1)  # DMF dear
        ac = AdmissionController(profile, c_flex=0.01)
        queue_query(server, 1, deadline=0.62, exec_time=0.5)
        newcomer = incoming(deadline=2.0, exec_time=0.3)
        # Wait: newcomer deadline later than queued -> endangered set empty.
        # Use an urgent newcomer instead:
        newcomer = incoming(deadline=0.45, exec_time=0.3)
        decision = ac.decide(newcomer, server)
        assert not decision.admitted
        assert decision.reason == "usm-check"

    def test_usm_check_disabled_for_naive_profile(self):
        _, server = make_server()
        ac = AdmissionController(PenaltyProfile.naive(), c_flex=0.01)
        queue_query(server, 1, deadline=0.62, exec_time=0.5)
        newcomer = incoming(deadline=0.45, exec_time=0.3)
        assert ac.decide(newcomer, server).admitted

    def test_gamble_clause_admits_predicted_miss_when_rejection_dearer(self):
        """With C_r > C_fm, a predicted miss is the cheaper outcome, so
        the deadline check lets the query gamble (Eq. 3 economics)."""
        _, server = make_server()
        queue_query(server, 1, deadline=0.9, exec_time=5.0)  # wall of work
        gambler_profile = PenaltyProfile(c_r=1.0, c_fm=0.1, c_fs=0.1)
        ac = AdmissionController(gambler_profile, c_flex=1.0)
        decision = ac.decide(incoming(deadline=1.0, exec_time=0.3), server)
        assert decision.admitted

    def test_gamble_clause_inert_for_naive_and_cfm_heavy_profiles(self):
        _, server = make_server()
        queue_query(server, 1, deadline=0.9, exec_time=5.0)
        for profile in (
            PenaltyProfile.naive(),
            PenaltyProfile(c_r=0.1, c_fm=1.0, c_fs=0.1),
        ):
            ac = AdmissionController(profile, c_flex=1.0)
            decision = ac.decide(incoming(deadline=1.0, exec_time=0.3), server)
            assert not decision.admitted
            assert decision.reason == "deadline-check"

    def test_gamble_clause_uses_per_query_profile(self):
        _, server = make_server()
        queue_query(server, 1, deadline=0.9, exec_time=5.0)
        system = PenaltyProfile(c_r=0.1, c_fm=1.0, c_fs=0.1)  # system rejects
        ac = AdmissionController(system, c_flex=1.0)
        gambler = incoming(deadline=1.0, exec_time=0.3)
        gambler.profile = PenaltyProfile(c_r=1.0, c_fm=0.1, c_fs=0.1)
        assert ac.decide(gambler, server).admitted
        plain = incoming(deadline=1.0, exec_time=0.3)
        assert not ac.decide(plain, server).admitted

    def test_usm_check_can_be_switched_off(self):
        _, server = make_server()
        profile = PenaltyProfile(c_r=0.1, c_fm=0.5, c_fs=0.1)
        ac = AdmissionController(profile, c_flex=0.01, use_usm_check=False)
        queue_query(server, 1, deadline=0.62, exec_time=0.5)
        newcomer = incoming(deadline=0.45, exec_time=0.3)
        assert ac.decide(newcomer, server).admitted
