"""Fleet end-to-end contracts: equivalence, determinism, exact merges.

These are the acceptance gates of the fleet subsystem:

* a 1-shard fleet is report-digest-identical to the single-server
  runner for the same config and seed;
* an N-shard fleet is byte-identical across repeats and across
  serial-vs-process shard execution;
* the merged report's aggregates equal exact recomputation from the
  shard reports.
"""

import pytest

from repro.core.fixedpoint import fixed_from_float, float_from_fixed
from repro.db.transactions import Outcome
from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.report import stable_report_bytes, stable_report_digest
from repro.experiments.runner import run_experiment
from repro.faults.scenario import FaultScenario, ServerSlowdown
from repro.fleet import FleetConfig, run_fleet
from repro.obs.config import ObsConfig

SMOKE = SCALES["smoke"]


def base_config(**overrides):
    defaults = dict(policy="unit", update_trace="med-unif", seed=7, scale=SMOKE)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def fleet_config(base, **overrides):
    defaults = dict(base=base, n_shards=2)
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestOneShardEquivalence:
    """Tier-1: the fleet path is a strict generalization of the runner."""

    def test_digest_identical_to_single_server(self):
        config = base_config()
        single = stable_report_bytes(run_experiment(config))
        fleet = run_fleet(fleet_config(base_config(), n_shards=1))
        assert stable_report_bytes(fleet.merged) == single

    def test_holds_for_baseline_policy_and_other_seed(self):
        config = base_config(policy="odu", seed=11, update_trace="low-unif")
        single = stable_report_digest(run_experiment(config))
        fleet = run_fleet(fleet_config(config, n_shards=1))
        assert fleet.digest == single

    def test_holds_with_faults(self):
        faults = FaultScenario(
            name="slow", slowdowns=(ServerSlowdown(start=30.0, end=60.0, rate=0.5),)
        )
        config = base_config(faults=faults)
        single = stable_report_digest(run_experiment(config))
        fleet = run_fleet(fleet_config(base_config(faults=faults), n_shards=1))
        assert fleet.digest == single


class TestMultiShardDeterminism:
    def test_repeat_runs_byte_identical(self):
        a = run_fleet(fleet_config(base_config(), n_shards=3, replication=2,
                                   router_policy="freshness"))
        b = run_fleet(fleet_config(base_config(), n_shards=3, replication=2,
                                   router_policy="freshness"))
        assert stable_report_bytes(a.merged) == stable_report_bytes(b.merged)
        assert a.shard_digests() == b.shard_digests()
        assert a.rebalances == b.rebalances

    def test_serial_and_process_fleets_identical(self):
        serial = run_fleet(fleet_config(base_config(), n_shards=2, replication=2,
                                        router_policy="least-loaded", workers=0))
        procs = run_fleet(fleet_config(base_config(), n_shards=2, replication=2,
                                       router_policy="least-loaded", workers=1))
        assert stable_report_bytes(serial.merged) == stable_report_bytes(procs.merged)
        assert serial.shard_digests() == procs.shard_digests()

    def test_epoch_length_does_not_change_trajectory_without_coordination(self):
        """With the coordinator off, epoch slicing is pure bookkeeping:
        any sync period yields the same merged report."""
        coarse = run_fleet(fleet_config(base_config(), coordinate=False,
                                        sync_period=60.0))
        fine = run_fleet(fleet_config(base_config(), coordinate=False,
                                      sync_period=7.0))
        assert stable_report_bytes(coarse.merged) == stable_report_bytes(fine.merged)


class TestMergeExactness:
    @pytest.fixture(scope="class")
    def fleet(self):
        return run_fleet(fleet_config(base_config(), n_shards=4, replication=2,
                                      router_policy="freshness"))

    def test_counts_sum(self, fleet):
        for outcome in Outcome:
            assert fleet.merged.outcome_counts[outcome] == sum(
                r.outcome_counts[outcome] for r in fleet.shard_reports
            )
        assert fleet.merged.queries_submitted == sum(
            r.queries_submitted for r in fleet.shard_reports
        )
        assert fleet.merged.events_fired == sum(
            r.events_fired for r in fleet.shard_reports
        )

    def test_busy_time_is_exact_fixed_point_sum(self, fleet):
        for key, merged_value in fleet.merged.busy_by_class.items():
            exact = float_from_fixed(
                sum(fixed_from_float(r.busy_by_class[key]) for r in fleet.shard_reports)
            )
            assert merged_value == exact  # ==, not approx

    def test_every_query_routed_and_resolved(self, fleet):
        assert fleet.merged.queries_submitted == sum(fleet.routing["routed_counts"])

    def test_replicated_updates_cost_more(self, fleet):
        """2-way replication executes replica update streams: fleet-wide
        update arrivals must exceed the single-server trace's."""
        single = run_experiment(base_config())
        assert fleet.merged.update_arrivals > single.update_arrivals


class TestPerShardFaults:
    def test_fault_isolated_to_its_shard(self):
        healthy = run_fleet(fleet_config(base_config(), coordinate=False))
        slow = FaultScenario(
            name="shard0-slow",
            slowdowns=(ServerSlowdown(start=10.0, end=80.0, rate=0.4),),
        )
        faulted = run_fleet(
            fleet_config(base_config(), coordinate=False, shard_faults={0: slow})
        )
        digests_h = healthy.shard_digests()
        digests_f = faulted.shard_digests()
        assert digests_f[0] != digests_h[0]  # the slowdown changed shard 0
        assert digests_f[1] == digests_h[1]  # ...and only shard 0

    def test_coordinator_reacts_to_shard_fault(self):
        slow = FaultScenario(
            name="shard0-slow",
            slowdowns=(ServerSlowdown(start=10.0, end=110.0, rate=0.25),),
        )
        fleet = run_fleet(fleet_config(base_config(), shard_faults={0: slow}))
        assert fleet.rebalances  # the imbalance produced directives
        assert any(r["shard"] == 0 and r["flex_factor"] > 1.0 for r in fleet.rebalances)


class TestObservability:
    def test_fleet_trace_events(self):
        obs = ObsConfig(enabled=True, keep_events=True, metrics=False)
        fleet = run_fleet(
            fleet_config(base_config(obs=obs), n_shards=2, replication=2,
                         router_policy="freshness")
        )
        assert fleet.obs_summary is not None
        by_kind = fleet.obs_summary["by_kind"]
        assert by_kind.get("fleet.route", 0) == fleet.merged.queries_submitted
        if fleet.rebalances:
            assert by_kind.get("fleet.rebalance", 0) == len(fleet.rebalances)

    def test_shard_spans_carry_shard_label(self):
        """Fleet shards stamp their id on every span; single-server
        span dumps omit the key (historical digests unchanged)."""
        from repro.obs.spans import build_spans

        events = [
            {"t": 0.0, "kind": "query.admit", "txn": 1, "deadline": 5.0, "items": 1},
            {"t": 0.0, "kind": "sched.enqueue", "txn": 1, "cause": "admit"},
            {"t": 0.5, "kind": "sched.dispatch", "txn": 1},
            {
                "t": 1.0,
                "kind": "query.outcome",
                "txn": 1,
                "outcome": "success",
                "arrival": 0.0,
                "latency": 1.0,
                "freshness": 1.0,
                "restarts": 0,
            },
        ]
        labeled = build_spans(events, shard=3)
        assert labeled.spans[0].as_dict()["shard"] == 3
        plain = build_spans(events)
        assert "shard" not in plain.spans[0].as_dict()

    def test_multi_shard_spans_built_per_shard(self):
        obs = ObsConfig(enabled=True, keep_events=False, metrics=False, spans=True)
        fleet = run_fleet(fleet_config(base_config(obs=obs), n_shards=2))
        for report in fleet.shard_reports:
            assert report.obs_spans is not None
            assert report.obs_spans["summary"]["spans"] > 0

    def test_disabled_obs_keeps_fleet_summary_none(self):
        fleet = run_fleet(fleet_config(base_config()))
        assert fleet.obs_summary is None


class TestValidation:
    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError):
            FleetConfig(base=base_config(), n_shards=0)

    def test_bad_sync_period_rejected(self):
        with pytest.raises(ValueError):
            FleetConfig(base=base_config(), sync_period=0.0)

    def test_report_as_dict_is_json_ready(self):
        import json

        fleet = run_fleet(fleet_config(base_config()))
        payload = json.dumps(fleet.as_dict(), sort_keys=True)
        assert "digest" in payload
