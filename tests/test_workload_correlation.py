"""Tests for correlated weight construction (Table 1's ±0.8)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workload.correlation import correlated_weights, pearson


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_vector_returns_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1])

    def test_short_vectors(self):
        assert pearson([1.0], [2.0]) == 0.0


class TestCorrelatedWeights:
    def reference(self, n=200, seed=0):
        rng = random.Random(seed)
        return [rng.expovariate(1.0) * 100 for _ in range(n)]

    @pytest.mark.parametrize("rho", [0.8, -0.8, 0.0, 0.5])
    def test_exact_sample_correlation(self, rho):
        reference = self.reference()
        weights = correlated_weights(reference, rho, random.Random(42))
        assert pearson(weights, reference) == pytest.approx(rho, abs=1e-9)

    def test_weights_non_negative(self):
        weights = correlated_weights(self.reference(), 0.8, random.Random(1))
        assert min(weights) >= 0.0
        assert max(weights) > 0.0

    def test_rho_out_of_range(self):
        with pytest.raises(ValueError):
            correlated_weights(self.reference(), 1.5, random.Random(0))

    def test_constant_reference_rejected(self):
        with pytest.raises(ValueError):
            correlated_weights([5.0] * 10, 0.8, random.Random(0))

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            correlated_weights([1.0, 2.0], 0.8, random.Random(0))

    @settings(max_examples=25)
    @given(
        st.floats(min_value=-0.95, max_value=0.95),
        st.integers(min_value=0, max_value=1000),
    )
    def test_property_correlation_hits_target(self, rho, seed):
        reference = self.reference(n=64, seed=3)
        weights = correlated_weights(reference, rho, random.Random(seed))
        assert pearson(weights, reference) == pytest.approx(rho, abs=1e-6)
        assert min(weights) >= 0.0
