"""Determinism regression guard (the invariant simlint protects).

Two identical runs with the same master seed must be *byte-identical* —
not approximately equal — all the way through the Figure 4 benchmark
pipeline.  If this test starts failing, something in the run path is
drawing from ambient state (RNG, wall clock, hash ordering); run
``python -m repro.lint src/repro`` to find it.
"""

import dataclasses
import json

from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.figures import figure4, render_figure4
from repro.experiments.report import stable_report_bytes
from repro.experiments.runner import run_experiment

SMOKE = SCALES["smoke"]

# The canonical serialization lives in experiments.report so the fleet
# 1-shard-equivalence gate shares the exact same byte contract.
_stable_report_bytes = stable_report_bytes


class TestSingleRunDeterminism:
    def test_same_seed_byte_identical_report(self):
        config = ExperimentConfig(
            policy="unit", update_trace="med-unif", seed=7, scale=SMOKE
        )
        first = _stable_report_bytes(run_experiment(config))
        second = _stable_report_bytes(
            run_experiment(dataclasses.replace(config))
        )
        assert first == second

    def test_different_seed_differs(self):
        """Sanity: the serialization actually captures run results."""
        a = run_experiment(
            ExperimentConfig(policy="unit", update_trace="med-unif", seed=7, scale=SMOKE)
        )
        b = run_experiment(
            ExperimentConfig(policy="unit", update_trace="med-unif", seed=8, scale=SMOKE)
        )
        assert _stable_report_bytes(a) != _stable_report_bytes(b)


class TestFigure4Determinism:
    def test_two_fig4_runs_byte_identical(self):
        """The acceptance gate: the full Fig. 4 benchmark (9 traces x
        all policies, naive USM) twice with one master seed."""
        first = figure4(SMOKE, seed=7)
        second = figure4(SMOKE, seed=7)
        first_bytes = json.dumps(
            {t: {p: v.hex() for p, v in row.items()} for t, row in first.items()},
            sort_keys=True,
        ).encode("utf-8")
        second_bytes = json.dumps(
            {t: {p: v.hex() for p, v in row.items()} for t, row in second.items()},
            sort_keys=True,
        ).encode("utf-8")
        assert first_bytes == second_bytes
        # The rendered stats output is byte-identical too.
        assert render_figure4(first).encode("utf-8") == render_figure4(second).encode(
            "utf-8"
        )
