"""Integration-grade unit tests for the preemptive server.

Each test builds a tiny hand-computable scenario and checks the exact
outcome, which pins down the dispatching, preemption, 2PL-HP, firm
deadline, and freshness semantics.
"""

import pytest

from repro.db.items import ItemTable
from repro.db.policy_api import ServerPolicy
from repro.db.server import ARRIVAL_EVENT_PRIORITY, Server, ServerConfig
from repro.db.transactions import Outcome, QueryTransaction
from repro.sim.engine import Simulator


class StubPolicy(ServerPolicy):
    """Configurable policy: admit-all, drop/apply updates, optional ODU."""

    def __init__(self, apply_updates=True, admit=True, on_demand=False):
        self.apply_updates = apply_updates
        self.admit = admit
        self.on_demand = on_demand
        self._pending = {}

    def admit_query(self, query, server):
        return self.admit

    def should_apply_update(self, item, server):
        return self.apply_updates

    def on_query_stale_at_read(self, query, server):
        if not self.on_demand:
            return False
        waiting = False
        for item_id in query.items:
            item = server.items[item_id]
            if item.udrop > 0:
                server.spawn_refresh(item, query)
                waiting = True
        return waiting


def make_server(n_items=4, policy=None, period=100.0, update_exec=0.5):
    sim = Simulator()
    items = ItemTable.uniform(n_items, ideal_period=period, update_exec_time=update_exec)
    server = Server(sim, items, policy or StubPolicy(), ServerConfig())
    return sim, server


def submit_query(server, arrival, exec_time, deadline, items=(0,), freshness=0.9):
    txn = QueryTransaction(
        txn_id=server.next_txn_id(),
        arrival=arrival,
        exec_time=exec_time,
        items=tuple(items),
        relative_deadline=deadline,
        freshness_req=freshness,
    )
    server.sim.schedule(
        arrival, lambda: server.submit_query(txn), priority=ARRIVAL_EVENT_PRIORITY
    )
    return txn


def outcome_of(server, txn):
    for record in server.records:
        if record.txn_id == txn.txn_id:
            return record
    raise AssertionError(f"no record for txn {txn.txn_id}")


class TestBasicExecution:
    def test_single_query_succeeds(self):
        sim, server = make_server()
        txn = submit_query(server, arrival=1.0, exec_time=0.5, deadline=2.0)
        sim.run()
        record = outcome_of(server, txn)
        assert record.outcome is Outcome.SUCCESS
        assert record.finish_time == pytest.approx(1.5)
        assert record.freshness == 1.0

    def test_rejected_query_is_recorded(self):
        sim, server = make_server(policy=StubPolicy(admit=False))
        txn = submit_query(server, arrival=1.0, exec_time=0.5, deadline=2.0)
        sim.run()
        record = outcome_of(server, txn)
        assert record.outcome is Outcome.REJECTED
        assert record.finish_time == pytest.approx(1.0)

    def test_edf_order_between_queries(self):
        sim, server = make_server()
        relaxed = submit_query(server, arrival=0.0, exec_time=1.0, deadline=10.0)
        urgent = submit_query(server, arrival=0.1, exec_time=1.0, deadline=2.0)
        sim.run()
        # The urgent query preempts and finishes first.
        assert outcome_of(server, urgent).finish_time < outcome_of(
            server, relaxed
        ).finish_time
        assert outcome_of(server, urgent).outcome is Outcome.SUCCESS
        assert outcome_of(server, relaxed).outcome is Outcome.SUCCESS

    def test_firm_deadline_aborts_waiting_query(self):
        sim, server = make_server()
        first = submit_query(server, arrival=0.0, exec_time=2.0, deadline=3.0)
        starved = submit_query(server, arrival=0.0, exec_time=1.0, deadline=5.0)
        doomed = submit_query(server, arrival=0.1, exec_time=1.0, deadline=0.5)
        sim.run()
        # `doomed` has the earliest absolute deadline (0.6) but `first`
        # holds the CPU... EDF preempts: doomed runs first. Recompute:
        # doomed preempts at 0.1 and would finish at 1.1 > 0.6 -> aborted
        # at its deadline; first and starved then complete.
        assert outcome_of(server, doomed).outcome is Outcome.DEADLINE_MISS
        assert outcome_of(server, first).outcome is Outcome.SUCCESS
        assert outcome_of(server, starved).outcome is Outcome.SUCCESS

    def test_every_query_resolves_exactly_once(self):
        sim, server = make_server()
        txns = [
            submit_query(server, arrival=0.1 * i, exec_time=0.3, deadline=1.0)
            for i in range(10)
        ]
        sim.run()
        assert len(server.records) == len(txns)
        assert len({record.txn_id for record in server.records}) == len(txns)
        assert sum(server.outcome_counts.values()) == len(txns)


class TestUpdates:
    def test_update_applies_and_clears_lag(self):
        sim, server = make_server()
        sim.schedule(1.0, lambda: server.source_update_arrival(0))
        sim.run()
        item = server.items[0]
        assert item.updates_executed == 1
        assert item.udrop == 0
        assert item.applied_seq == 1

    def test_dropped_update_stales_item(self):
        sim, server = make_server(policy=StubPolicy(apply_updates=False))
        sim.schedule(1.0, lambda: server.source_update_arrival(0))
        sim.run()
        assert server.items[0].udrop == 1
        assert server.items[0].updates_dropped == 1

    def test_update_preempts_running_query(self):
        sim, server = make_server(update_exec=0.5)
        txn = submit_query(server, arrival=0.0, exec_time=1.0, deadline=10.0, items=(1,))
        sim.schedule(0.5, lambda: server.source_update_arrival(0))
        sim.run()
        record = outcome_of(server, txn)
        # Query ran 0.5s, was preempted for 0.5s, then finished its rest.
        assert record.finish_time == pytest.approx(1.5)
        assert record.outcome is Outcome.SUCCESS
        assert record.restarts == 0  # different item: preempted, not aborted

    def test_2plhp_update_restarts_conflicting_query(self):
        sim, server = make_server(update_exec=0.5)
        txn = submit_query(server, arrival=0.0, exec_time=1.0, deadline=10.0, items=(0,))
        sim.schedule(0.5, lambda: server.source_update_arrival(0))
        sim.run()
        record = outcome_of(server, txn)
        # Query loses 0.5s of work (restart), update runs 0.5s, query
        # reruns fully: finish = 0.5 + 0.5 + 1.0 = 2.0.
        assert record.restarts == 1
        assert record.finish_time == pytest.approx(2.0)
        assert record.outcome is Outcome.SUCCESS

    def test_2plhp_restart_can_cause_deadline_miss(self):
        sim, server = make_server(update_exec=0.5)
        txn = submit_query(server, arrival=0.0, exec_time=1.0, deadline=1.6, items=(0,))
        sim.schedule(0.5, lambda: server.source_update_arrival(0))
        sim.run()
        assert outcome_of(server, txn).outcome is Outcome.DEADLINE_MISS


class TestFreshnessSemantics:
    def test_stale_read_yields_dsf(self):
        sim, server = make_server(policy=StubPolicy(apply_updates=False))
        sim.schedule(0.5, lambda: server.source_update_arrival(0))
        txn = submit_query(server, arrival=1.0, exec_time=0.2, deadline=5.0, items=(0,))
        sim.run()
        record = outcome_of(server, txn)
        assert record.outcome is Outcome.DATA_STALE
        assert record.freshness == pytest.approx(0.5)

    def test_freshness_measured_at_read_not_commit(self):
        """A drop landing during the query's execution does not stale a
        result computed from data that was fresh when read."""
        sim, server = make_server(policy=StubPolicy(apply_updates=False))
        txn = submit_query(server, arrival=0.0, exec_time=1.0, deadline=5.0, items=(0,))
        sim.schedule(0.5, lambda: server.source_update_arrival(0))
        sim.run()
        record = outcome_of(server, txn)
        # The arrival at t=0.5 is a drop under this policy; but its
        # write-lock conflict... the arrival is dropped (never enqueued),
        # so no 2PL conflict occurs and the query keeps its snapshot.
        assert record.outcome is Outcome.SUCCESS
        assert record.freshness == 1.0

    def test_min_freshness_across_items(self):
        sim, server = make_server(policy=StubPolicy(apply_updates=False))
        sim.schedule(0.1, lambda: server.source_update_arrival(1))
        txn = submit_query(
            server, arrival=1.0, exec_time=0.2, deadline=5.0, items=(0, 1)
        )
        sim.run()
        assert outcome_of(server, txn).outcome is Outcome.DATA_STALE

    def test_loose_freshness_requirement_tolerates_staleness(self):
        sim, server = make_server(policy=StubPolicy(apply_updates=False))
        sim.schedule(0.1, lambda: server.source_update_arrival(0))
        txn = submit_query(
            server, arrival=1.0, exec_time=0.2, deadline=5.0, items=(0,), freshness=0.5
        )
        sim.run()
        assert outcome_of(server, txn).outcome is Outcome.SUCCESS


class TestOnDemandRefresh:
    def test_parked_query_waits_for_refresh_then_succeeds(self):
        sim, server = make_server(
            policy=StubPolicy(apply_updates=False, on_demand=True), update_exec=0.5
        )
        sim.schedule(0.1, lambda: server.source_update_arrival(0))  # dropped
        txn = submit_query(server, arrival=1.0, exec_time=0.2, deadline=5.0, items=(0,))
        sim.run()
        record = outcome_of(server, txn)
        assert record.outcome is Outcome.SUCCESS
        assert record.freshness == 1.0
        # 1.0 arrival + 0.5 refresh + 0.2 exec
        assert record.finish_time == pytest.approx(1.7)
        assert server.items[0].updates_executed == 1

    def test_refresh_delay_can_miss_deadline(self):
        sim, server = make_server(
            policy=StubPolicy(apply_updates=False, on_demand=True), update_exec=0.5
        )
        sim.schedule(0.1, lambda: server.source_update_arrival(0))
        txn = submit_query(server, arrival=1.0, exec_time=0.2, deadline=0.6, items=(0,))
        sim.run()
        assert outcome_of(server, txn).outcome is Outcome.DEADLINE_MISS

    def test_attach_refresh_shares_one_update(self):
        sim, server = make_server(
            policy=StubPolicy(apply_updates=False, on_demand=True), update_exec=0.5
        )
        sim.schedule(0.1, lambda: server.source_update_arrival(0))
        a = submit_query(server, arrival=1.0, exec_time=0.2, deadline=5.0, items=(0,))
        b = submit_query(server, arrival=1.05, exec_time=0.2, deadline=5.0, items=(0,))
        sim.run()
        assert outcome_of(server, a).outcome is Outcome.SUCCESS
        assert outcome_of(server, b).outcome is Outcome.SUCCESS
        # Without dedup in the stub, the second query spawns its own
        # refresh; both still commit fresh.
        assert server.items[0].updates_executed >= 1


class TestAccounting:
    def test_busy_time_by_class(self):
        sim, server = make_server(update_exec=0.5)
        submit_query(server, arrival=0.0, exec_time=1.0, deadline=10.0, items=(1,))
        sim.schedule(0.2, lambda: server.source_update_arrival(0))
        sim.run()
        busy = server.busy_time_by_class()
        assert busy["query"] == pytest.approx(1.0)
        assert busy["update"] == pytest.approx(0.5)
        assert server.busy_time() == pytest.approx(1.5)

    def test_running_remaining_mid_flight(self):
        sim, server = make_server()
        submit_query(server, arrival=0.0, exec_time=1.0, deadline=10.0)
        probes = []
        sim.schedule(0.4, lambda: probes.append(server.running_remaining()))
        sim.run()
        assert probes[0] == pytest.approx(0.6)
