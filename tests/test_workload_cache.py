"""Tests for the content-addressed workload cache.

The cache is only sound if (a) the key covers exactly the
workload-shaping config fields and (b) a cached run is byte-identical
to an uncached one.  Both are asserted here.
"""

from repro.core.usm import TABLE2_PROFILES
from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.workload.cache import CACHE_DIR_ENV, WorkloadCache, default_cache

from tests.test_determinism_regression import _stable_report_bytes

SMOKE = SCALES["smoke"]


def _config(**overrides):
    base = dict(policy="unit", update_trace="med-unif", seed=7, scale=SMOKE)
    base.update(overrides)
    return ExperimentConfig(**base)


class TestWorkloadKey:
    def test_key_is_stable_across_equal_configs(self):
        assert _config().workload_key() == _config().workload_key()

    def test_policy_and_profile_do_not_shape_the_workload(self):
        """Fields that only affect the *policy* must share one key —
        that sharing is the whole point of the cache."""
        key = _config().workload_key()
        assert _config(policy="odu").workload_key() == key
        assert _config(policy="elastic").workload_key() == key
        assert _config(profile=TABLE2_PROFILES["gt1-high-cfs"]).workload_key() == key
        assert _config(keep_records=True).workload_key() == key

    def test_workload_fields_change_the_key(self):
        key = _config().workload_key()
        assert _config(seed=8).workload_key() != key
        assert _config(update_trace="med-pos").workload_key() != key
        assert _config(scale=SCALES["small"]).workload_key() != key
        assert _config(zipf_skew=1.7).workload_key() != key
        assert _config(items_per_query=2).workload_key() != key
        assert _config(freshness_req=0.5).workload_key() != key


class TestCacheBehavior:
    def test_hit_returns_the_same_objects(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        cache = WorkloadCache()
        first = cache.get(_config())
        second = cache.get(_config(policy="imu"))  # same workload key
        assert second[0] is first[0]
        assert second[1] is first[1]
        assert (cache.hits, cache.misses, cache.disk_hits) == (1, 1, 0)

    def test_lru_bound_is_enforced(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        cache = WorkloadCache(max_entries=1)
        cache.get(_config())
        cache.get(_config(update_trace="med-pos"))  # evicts the first
        assert len(cache) == 1
        cache.get(_config())  # regenerated, not remembered
        assert cache.misses == 3

    def test_disk_tier_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        writer = WorkloadCache()
        query_trace, update_trace = writer.get(_config())
        reader = WorkloadCache()  # fresh memory: must come from disk
        query_loaded, update_loaded = reader.get(_config())
        assert (reader.disk_hits, reader.misses) == (1, 0)
        assert len(query_loaded.queries) == len(query_trace.queries)
        assert query_loaded.queries[0].arrival == query_trace.queries[0].arrival
        assert [item.period for item in update_loaded.items] == [
            item.period for item in update_trace.items
        ]

    def test_corrupt_disk_entry_regenerates(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        WorkloadCache().get(_config())
        for path in tmp_path.iterdir():
            path.write_bytes(b"not a pickle")
        fresh = WorkloadCache()
        fresh.get(_config())
        assert (fresh.disk_hits, fresh.misses) == (0, 1)

    def test_truncated_disk_entry_regenerates(self, tmp_path, monkeypatch):
        """A pickle cut off mid-stream (partial write, full disk) must
        be treated as a miss, not crash the run."""
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        WorkloadCache().get(_config())
        for path in tmp_path.iterdir():
            data = path.read_bytes()
            path.write_bytes(data[: len(data) // 2])
        fresh = WorkloadCache()
        query_trace, update_trace = fresh.get(_config())
        assert (fresh.disk_hits, fresh.misses) == (0, 1)
        assert query_trace.queries and update_trace.items

    def test_disabled_env_values_mean_memory_only(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, "off")
        cache = WorkloadCache()
        cache.get(_config())
        assert cache._disk_path("x") is None

    def test_env_value_whitespace_is_stripped(self, tmp_path, monkeypatch):
        """A padded path (trailing newline from `export FOO=$(...)`) must
        resolve to the same directory, and padded disable tokens must
        still disable."""
        monkeypatch.setenv(CACHE_DIR_ENV, f"  {tmp_path}\n")
        writer = WorkloadCache()
        writer.get(_config())
        assert any(tmp_path.iterdir())  # spilled into the *unpadded* dir
        monkeypatch.setenv(CACHE_DIR_ENV, " off \n")
        assert WorkloadCache()._disk_path("x") is None

    def test_clear_resets_counters(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        cache = WorkloadCache()
        cache.get(_config())
        cache.get(_config())
        assert (cache.hits, cache.misses) == (1, 1)
        cache.clear()
        assert (cache.hits, cache.misses, cache.disk_hits) == (0, 0, 0)
        assert len(cache) == 0


class TestCrossProcessEquivalence:
    def test_fresh_caches_generate_identical_workloads(self, monkeypatch):
        """The contract behind the SF003 suppression on ``get_workload``:
        each sweep-pool worker holds its *own* module-global cache, so
        sharing is only sound because generation is a pure function of
        the config.  Two caches standing in for two worker processes
        must produce identical traces."""
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        query_a, update_a = WorkloadCache().get(_config())
        query_b, update_b = WorkloadCache().get(_config())
        assert [q.arrival for q in query_a.queries] == [
            q.arrival for q in query_b.queries
        ]
        assert [item.period for item in update_a.items] == [
            item.period for item in update_b.items
        ]


class TestCachedRunsAreByteIdentical:
    def test_warm_cache_changes_nothing(self, monkeypatch):
        """The regression gate for the whole scheme: a report computed
        from a cache hit is byte-for-byte the report computed from a
        freshly generated workload."""
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        cache = default_cache()
        cache.clear()
        cold = _stable_report_bytes(run_experiment(_config()))  # miss
        warm = _stable_report_bytes(run_experiment(_config()))  # hit
        assert cold == warm
