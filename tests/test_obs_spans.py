"""Span builder contracts: exactness, determinism, malformed input.

Three pillars (the PR's acceptance criteria):

1. **Exact segmentation** — for every completed span, the segment
   durations summed in fixed-point units telescope to
   ``fixed(end) − fixed(admit)`` exactly, across multiple seeds; every
   simulated instant between admit and outcome is accounted for.
2. **Determinism** — same seed ⇒ byte-identical span JSONL, and
   serial-vs-parallel sweeps build identical spans per cell.
3. **Graceful degradation** — orphan outcomes, missing admits,
   duplicate admits, and truncated streams never raise; they are
   skipped and counted per category.
"""

import dataclasses
from pathlib import Path

import pytest

from repro.core.fixedpoint import fixed_from_float
from repro.core.usm import PenaltyProfile
from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.sweep import run_grid, run_grid_parallel
from repro.obs.config import ObsConfig
from repro.obs.spans import (
    COMPONENT_BY_OUTCOME,
    SKIP_DUPLICATE_ADMIT,
    SKIP_ORPHAN_OUTCOME,
    SKIP_ORPHAN_SCHED,
    SKIP_UNFINISHED,
    WAIT_STATES,
    build_spans,
    render_spans_jsonl,
    spans_digest,
)

SMOKE = SCALES["smoke"]
OBS_KEEP = ObsConfig(enabled=True, keep_events=True)


def _spans_for(seed, policy="unit", trace="med-unif"):
    config = ExperimentConfig(
        policy=policy, update_trace=trace, seed=seed, scale=SMOKE, obs=OBS_KEEP
    )
    report = run_experiment(config)
    assert report.obs_events
    return report, build_spans(report.obs_events)


class TestExactSegmentation:
    @pytest.mark.parametrize("seed", [7, 11, 13])
    def test_segments_telescope_to_span_duration(self, seed):
        """Sum of segment durations == end − admit, to the ulp."""
        _, result = _spans_for(seed)
        assert result.spans
        assert result.total_skipped == 0
        checked = 0
        for span in result.spans:
            if span.admit is None:
                assert span.segments == []
                continue
            total = sum(
                fixed_from_float(seg.end) - fixed_from_float(seg.start)
                for seg in span.segments
            )
            expected = fixed_from_float(span.end) - fixed_from_float(span.admit)
            assert total == expected, span
            checked += 1
        assert checked > 0

    @pytest.mark.parametrize("seed", [7, 11, 13])
    def test_every_submitted_query_has_a_span(self, seed):
        report, result = _spans_for(seed)
        assert len(result.spans) == report.queries_submitted
        by_outcome = {}
        for span in result.spans:
            by_outcome[span.outcome] = by_outcome.get(span.outcome, 0) + 1
        for outcome, count in report.outcome_counts.items():
            assert by_outcome.get(outcome.value, 0) == count, outcome

    def test_segments_are_contiguous_and_positive(self):
        _, result = _spans_for(7)
        for span in result.spans:
            if span.admit is None:
                continue
            previous_end = span.admit
            for seg in span.segments:
                assert seg.state in WAIT_STATES
                assert seg.start == previous_end  # no gaps, no overlaps
                assert seg.end > seg.start  # zero-length segments dropped
                previous_end = seg.end
            assert previous_end == span.end

    def test_usm_component_matches_outcome(self):
        _, result = _spans_for(7)
        for span in result.spans:
            assert span.usm_component == COMPONENT_BY_OUTCOME[span.outcome]
            if span.outcome == "success":
                assert span.cause is None
            else:
                assert span.cause

    def test_odu_policy_produces_refresh_waits(self):
        """ODU parks queries for on-demand refreshes; spans must see it."""
        _, result = _spans_for(7, policy="odu")
        parked = sum(
            1
            for span in result.spans
            for seg in span.segments
            if seg.state == "refresh-wait"
        )
        assert parked > 0


class TestSpanDeterminism:
    def test_same_seed_byte_identical_span_jsonl(self):
        _, first = _spans_for(7)
        _, second = _spans_for(7)
        assert render_spans_jsonl(first) == render_spans_jsonl(second)
        assert spans_digest(first) == spans_digest(second)

    def test_different_seed_different_spans(self):
        _, first = _spans_for(7)
        _, second = _spans_for(8)
        assert spans_digest(first) != spans_digest(second)

    def test_serial_vs_parallel_sweep_identical_spans(self):
        kwargs = dict(
            policies=("unit", "odu"),
            traces=("low-unif", "med-unif"),
            profiles=(PenaltyProfile.naive(),),
            scale=SMOKE,
            seed=5,
            base=ExperimentConfig(
                policy="unit", update_trace="low-unif", seed=5, scale=SMOKE,
                obs=OBS_KEEP,
            ),
        )
        serial = run_grid(**kwargs)
        parallel = run_grid_parallel(workers=2, **kwargs)
        for key in serial:
            assert spans_digest(build_spans(serial[key].obs_events)) == (
                spans_digest(build_spans(parallel[key].obs_events))
            ), key


class TestMalformedStreams:
    """Hand-crafted event dicts (the JSONL shape) through the builder."""

    ADMIT = {"t": 1.0, "kind": "query.admit", "txn": 1, "deadline": 2.0}
    ENQ = {"t": 1.0, "kind": "sched.enqueue", "txn": 1, "cause": "admit"}
    RUN = {"t": 1.2, "kind": "sched.dispatch", "txn": 1}
    DONE = {
        "t": 1.5, "kind": "query.outcome", "txn": 1, "outcome": "success",
        "arrival": 1.0, "latency": 0.5, "freshness": 1.0, "restarts": 0,
    }

    def test_well_formed_minimal_stream(self):
        result = build_spans([self.ADMIT, self.ENQ, self.RUN, self.DONE])
        assert len(result.spans) == 1
        assert result.total_skipped == 0
        span = result.spans[0]
        assert [seg.state for seg in span.segments] == ["queued", "executing"]
        assert span.duration == pytest.approx(0.5)

    def test_orphan_outcome_skipped_with_count(self):
        result = build_spans([self.DONE])
        assert result.spans == []
        assert result.skipped[SKIP_ORPHAN_OUTCOME] == 1

    def test_rejected_outcome_without_admit_is_a_rejection_span(self):
        rejected = dict(self.DONE, outcome="rejected")
        result = build_spans([rejected])
        assert result.total_skipped == 0
        (span,) = result.spans
        assert span.admit is None
        assert span.usm_component == "R"
        assert span.segments == []

    def test_orphan_sched_events_skipped_with_count(self):
        result = build_spans([self.ENQ, self.RUN])
        assert result.spans == []
        assert result.skipped[SKIP_ORPHAN_SCHED] == 2

    def test_duplicate_admit_counted_first_wins(self):
        result = build_spans(
            [self.ADMIT, dict(self.ADMIT, t=1.1), self.ENQ, self.RUN, self.DONE]
        )
        assert len(result.spans) == 1
        assert result.skipped[SKIP_DUPLICATE_ADMIT] == 1
        assert result.spans[0].admit == 1.0

    def test_unfinished_span_counted_not_emitted(self):
        result = build_spans([self.ADMIT, self.ENQ])
        assert result.spans == []
        assert result.skipped[SKIP_UNFINISHED] == 1

    def test_interleaved_queries_do_not_cross_attribute(self):
        other_admit = {"t": 1.0, "kind": "query.admit", "txn": 2, "deadline": 3.0}
        other_enq = {"t": 1.0, "kind": "sched.enqueue", "txn": 2, "cause": "admit"}
        other_run = {"t": 1.6, "kind": "sched.dispatch", "txn": 2}
        other_done = dict(self.DONE, txn=2, t=2.0, latency=1.0)
        result = build_spans(
            [self.ADMIT, self.ENQ, other_admit, other_enq,
             self.RUN, self.DONE, other_run, other_done]
        )
        assert result.total_skipped == 0
        by_txn = {span.txn: span for span in result.spans}
        assert by_txn[1].duration == pytest.approx(0.5)
        assert by_txn[2].duration == pytest.approx(1.0)
        assert by_txn[2].waits["queued"] == pytest.approx(0.6)

    def test_trace_meta_header_marks_partial(self):
        header = {"kind": "trace.meta", "dropped": 42, "recorded": 100}
        result = build_spans(
            [header, self.ADMIT, self.ENQ, self.RUN, self.DONE]
        )
        assert result.partial
        assert result.dropped == 42
        assert len(result.spans) == 1  # surviving spans still build

    def test_dropped_argument_marks_partial(self):
        result = build_spans([self.ADMIT, self.ENQ, self.RUN, self.DONE], dropped=7)
        assert result.partial
        assert result.dropped == 7

    def test_complete_stream_not_partial(self):
        result = build_spans([self.ADMIT, self.ENQ, self.RUN, self.DONE])
        assert not result.partial
        assert result.dropped == 0

    def test_lock_wait_attribution_per_item(self):
        events = [
            self.ADMIT,
            self.ENQ,
            {"t": 1.1, "kind": "sched.dispatch", "txn": 1},
            {"t": 1.2, "kind": "lock.wait", "txn": 1, "item": 9,
             "holders": [5], "update": False},
            {"t": 1.3, "kind": "lock.grant", "txn": 1, "item": 9},
            {"t": 1.3, "kind": "sched.enqueue", "txn": 1, "cause": "grant"},
            {"t": 1.4, "kind": "sched.dispatch", "txn": 1},
            self.DONE,
        ]
        result = build_spans(events)
        (span,) = result.spans
        assert span.waits["lock-wait"] == pytest.approx(0.1)
        assert span.lock_items == {9: pytest.approx(0.1)}
        states = [seg.state for seg in span.segments]
        assert states == ["queued", "executing", "lock-wait", "queued", "executing"]


class TestRunnerIntegration:
    def test_report_obs_spans_attached_and_reconciled(self):
        report, result = _spans_for(7)
        assert report.obs_spans is not None
        assert report.obs_spans["summary"]["spans"] == len(result.spans)
        ledger = report.obs_spans["ledger"]
        assert ledger["components"] == report.components
        assert ledger["usm"] == report.usm

    def test_spans_disabled_via_config(self):
        config = ExperimentConfig(
            policy="unit", update_trace="med-unif", seed=7, scale=SMOKE,
            obs=dataclasses.replace(OBS_KEEP, spans=False),
        )
        report = run_experiment(config)
        assert report.obs_spans is None

    def test_spans_jsonl_artifact_written(self, tmp_path):
        config = ExperimentConfig(
            policy="unit", update_trace="med-unif", seed=7, scale=SMOKE,
            obs=ObsConfig(enabled=True, out_dir=str(tmp_path)),
        )
        report = run_experiment(config)
        path = Path(report.obs_artifacts["spans_jsonl"])
        lines = path.read_text(encoding="utf-8").splitlines()
        assert '"kind":"spans.meta"' in lines[0]
        assert len(lines) == report.queries_submitted + 1
