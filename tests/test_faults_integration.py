"""End-to-end fault injection: runner integration and determinism.

The acceptance gates of the fault subsystem:

* a config with no scenario (or an *empty* scenario) is byte-identical
  to one without the field at all;
* with a scenario, same-seed runs are byte-identical — serially and
  through the parallel sweep;
* degradation metrics and trace markers appear exactly when asked for.
"""

import dataclasses

from repro.core.usm import PenaltyProfile
from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.sweep import run_grid, run_grid_parallel
from repro.faults import (
    FaultScenario,
    FlashCrowd,
    HotspotShift,
    ServerSlowdown,
    UpdateStorm,
)
from repro.obs.config import ObsConfig

from tests.test_determinism_regression import _stable_report_bytes

SMOKE = SCALES["smoke"]


def combined_scenario():
    return FaultScenario(
        name="combined",
        flash_crowds=[FlashCrowd(start=30.0, end=50.0, multiplier=3.0)],
        update_storms=[UpdateStorm(start=40.0, end=60.0, period_factor=0.25)],
        hotspot_shifts=[HotspotShift(at=60.0, rotation=13)],
        slowdowns=[ServerSlowdown(start=45.0, end=70.0, rate=0.5)],
    )


def config(**overrides):
    base = dict(policy="unit", update_trace="med-unif", seed=7, scale=SMOKE)
    base.update(overrides)
    return ExperimentConfig(**base)


class TestNoScenarioIdentity:
    def test_empty_scenario_is_byte_identical_to_none(self):
        plain = _stable_report_bytes(run_experiment(config()))
        empty = _stable_report_bytes(
            run_experiment(config(faults=FaultScenario(name="none")))
        )
        assert plain == empty

    def test_slowdown_only_scenario_shares_the_workload_key(self):
        slow = config(
            faults=FaultScenario(
                name="slow",
                slowdowns=[ServerSlowdown(start=10.0, end=20.0, rate=0.5)],
            )
        )
        assert slow.workload_key() == config().workload_key()


class TestScenarioDeterminism:
    def test_same_seed_byte_identical_with_faults(self):
        cfg = config(faults=combined_scenario())
        first = _stable_report_bytes(run_experiment(cfg))
        second = _stable_report_bytes(run_experiment(dataclasses.replace(cfg)))
        assert first == second

    def test_faults_actually_change_the_run(self):
        assert _stable_report_bytes(
            run_experiment(config(faults=combined_scenario()))
        ) != _stable_report_bytes(run_experiment(config()))

    def test_slowdown_changes_results_without_changing_the_workload(self):
        slow = FaultScenario(
            name="slow",
            slowdowns=[ServerSlowdown(start=30.0, end=90.0, rate=0.5)],
        )
        assert _stable_report_bytes(
            run_experiment(config(faults=slow))
        ) != _stable_report_bytes(run_experiment(config()))

    def test_parallel_sweep_byte_identical_to_serial(self):
        kwargs = dict(
            policies=("unit", "imu"),
            traces=("med-unif",),
            profiles=(PenaltyProfile.naive(),),
            scale=SMOKE,
            seed=7,
            base=config(faults=combined_scenario()),
        )
        serial = run_grid(**kwargs)
        parallel = run_grid_parallel(workers=2, **kwargs)
        assert list(serial) == list(parallel)
        for key in serial:
            assert _stable_report_bytes(serial[key]) == _stable_report_bytes(
                parallel[key]
            )


class TestReportingSurface:
    def test_degradation_metrics_need_records(self):
        without = run_experiment(config(faults=combined_scenario()))
        assert without.degradation is None
        with_records = run_experiment(
            config(faults=combined_scenario(), keep_records=True)
        )
        degradation = with_records.degradation
        assert degradation is not None
        labels = [w["label"] for w in degradation["windows"]]
        assert labels == [
            "flash-crowd-0",
            "update-storm-0",
            "server-slowdown-0",
            "hotspot-shift-0",
        ]

    def test_no_faults_no_degradation_even_with_records(self):
        report = run_experiment(config(keep_records=True))
        assert report.degradation is None

    def test_trace_markers_present_and_trajectory_unchanged(self, tmp_path):
        cfg = config(faults=combined_scenario())
        plain = _stable_report_bytes(run_experiment(cfg))
        traced_report = run_experiment(
            dataclasses.replace(
                cfg,
                obs=ObsConfig(
                    enabled=True, out_dir=str(tmp_path), keep_events=True
                ),
            )
        )
        # Observability must not bend the trajectory under faults.
        assert _stable_report_bytes(traced_report) == plain
        events = traced_report.obs_events or []
        starts = [e for e in events if e["kind"] == "fault.start"]
        ends = [e for e in events if e["kind"] == "fault.end"]
        assert [e["label"] for e in starts] == [
            "flash-crowd-0",
            "update-storm-0",
            "server-slowdown-0",
            "hotspot-shift-0",
        ]
        assert len(ends) == len(starts)
