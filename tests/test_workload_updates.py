"""Tests for the nine standard update traces (Table 1)."""

import pytest

from repro.sim.rng import RandomStreams
from repro.workload.correlation import pearson
from repro.workload.updates import (
    PAPER_TOTALS,
    STANDARD_UPDATE_TRACES,
    UpdateTraceSpec,
    _largest_remainder_counts,
    build_update_trace,
)


def reference_counts(n=64, seed=0):
    """A plausible skewed query histogram."""
    import random

    rng = random.Random(seed)
    return [int(rng.expovariate(1.0) * 50) + (5 if i < 10 else 0) for i in range(n)]


class TestStandardSpecs:
    def test_nine_traces(self):
        assert len(STANDARD_UPDATE_TRACES) == 9
        assert set(PAPER_TOTALS) == {"low", "med", "high"}

    def test_utilization_targets(self):
        assert STANDARD_UPDATE_TRACES["low-unif"].utilization == 0.15
        assert STANDARD_UPDATE_TRACES["med-pos"].utilization == 0.75
        assert STANDARD_UPDATE_TRACES["high-neg"].utilization == 1.50

    def test_paper_totals(self):
        assert STANDARD_UPDATE_TRACES["low-unif"].paper_total_updates == 6144
        assert STANDARD_UPDATE_TRACES["med-unif"].paper_total_updates == 30000
        assert STANDARD_UPDATE_TRACES["high-unif"].paper_total_updates == 60000


class TestLargestRemainder:
    def test_exact_total(self):
        counts = _largest_remainder_counts([1.0, 1.0, 1.0], 10)
        assert sum(counts) == 10

    def test_proportionality(self):
        counts = _largest_remainder_counts([1.0, 3.0], 40)
        assert counts == [10, 30]

    def test_zero_weights_allowed_if_some_positive(self):
        counts = _largest_remainder_counts([0.0, 1.0], 7)
        assert counts == [0, 7]

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            _largest_remainder_counts([0.0, 0.0], 5)


class TestBuildUpdateTrace:
    def build(self, name="med-unif", horizon=400.0, seed=1):
        return build_update_trace(
            STANDARD_UPDATE_TRACES[name],
            reference_counts(),
            horizon=horizon,
            streams=RandomStreams(seed),
            mean_exec=0.15,
        )

    @pytest.mark.parametrize("name", sorted(STANDARD_UPDATE_TRACES))
    def test_utilization_within_tolerance(self, name):
        trace = self.build(name)
        target = STANDARD_UPDATE_TRACES[name].utilization
        assert trace.utilization() == pytest.approx(target, rel=0.10)

    def test_uniform_counts_are_flat(self):
        trace = self.build("med-unif")
        counts = trace.per_item_counts()
        assert max(counts) - min(counts) <= 1

    def test_positive_correlation_achieved(self):
        trace = self.build("med-pos")
        rho = pearson(
            [float(c) for c in trace.per_item_counts()],
            [float(c) for c in reference_counts()],
        )
        assert rho == pytest.approx(0.8, abs=0.1)

    def test_negative_correlation_achieved(self):
        trace = self.build("med-neg")
        rho = pearson(
            [float(c) for c in trace.per_item_counts()],
            [float(c) for c in reference_counts()],
        )
        assert rho == pytest.approx(-0.8, abs=0.1)

    def test_volumes_ordered(self):
        low = self.build("low-unif").total_updates()
        med = self.build("med-unif").total_updates()
        high = self.build("high-unif").total_updates()
        assert low < med < high

    def test_arrivals_periodic_per_item(self):
        trace = self.build("low-unif")
        for item in trace.items:
            times = list(item.arrival_times(trace.horizon))
            assert len(times) <= item.count
            gaps = [b - a for a, b in zip(times, times[1:])]
            assert all(gap == pytest.approx(item.period) for gap in gaps)

    def test_arrival_events_sorted_and_complete(self):
        trace = self.build("low-unif")
        events = trace.arrival_events()
        times = [t for t, _ in events]
        assert times == sorted(times)
        assert len(events) == sum(
            len(list(item.arrival_times(trace.horizon))) for item in trace.items
        )

    def test_zero_count_items_never_fire(self):
        spec = UpdateTraceSpec(
            name="tiny", volume="low", correlation="unif",
            utilization=0.001, paper_total_updates=0,
        )
        trace = build_update_trace(
            spec, reference_counts(), horizon=100.0, streams=RandomStreams(2)
        )
        for item in trace.items:
            if item.count == 0:
                assert list(item.arrival_times(trace.horizon)) == []
                assert item.period > trace.horizon

    def test_deterministic(self):
        a = self.build(seed=9)
        b = self.build(seed=9)
        assert a.per_item_counts() == b.per_item_counts()
        assert a.arrival_events() == b.arrival_events()

    def test_empty_reference_rejected(self):
        with pytest.raises(ValueError):
            build_update_trace(
                STANDARD_UPDATE_TRACES["low-unif"], [], 100.0, RandomStreams(0)
            )
