"""Edge-case and stress tests for the server's less-travelled paths."""

import random

import pytest

from repro.db.freshness import TimeFreshness
from repro.db.items import ItemTable
from repro.db.server import ARRIVAL_EVENT_PRIORITY, Server, ServerConfig
from repro.db.transactions import Outcome, QueryTransaction
from repro.sim.engine import Simulator

from tests.test_db_server import StubPolicy, make_server, outcome_of, submit_query


class TestResubmissionGuard:
    def test_double_submit_rejected(self):
        sim, server = make_server()
        txn = QueryTransaction(
            txn_id=server.next_txn_id(),
            arrival=0.0,
            exec_time=0.1,
            items=(0,),
            relative_deadline=1.0,
        )
        server.submit_query(txn)
        with pytest.raises(ValueError):
            server.submit_query(txn)


class TestMultiItemQueries:
    def test_query_locks_all_items(self):
        sim, server = make_server()
        txn = submit_query(
            server, arrival=0.0, exec_time=0.5, deadline=5.0, items=(0, 1, 2)
        )
        probes = []
        sim.schedule(0.2, lambda: probes.append(sorted(server.locks.held_items(txn))))
        sim.run()
        assert probes[0] == [0, 1, 2]
        assert outcome_of(server, txn).outcome is Outcome.SUCCESS

    def test_update_on_any_item_restarts_multi_item_query(self):
        sim, server = make_server(update_exec=0.2)
        txn = submit_query(
            server, arrival=0.0, exec_time=1.0, deadline=10.0, items=(0, 1, 2)
        )
        sim.schedule(0.3, lambda: server.source_update_arrival(2))
        sim.run()
        record = outcome_of(server, txn)
        assert record.restarts == 1
        assert record.outcome is Outcome.SUCCESS


class TestConcurrentUpdates:
    def test_same_item_updates_serialize_in_edf_order(self):
        sim, server = make_server(update_exec=0.5)
        # Two arrivals close together for the same item: the second must
        # wait for the first's write lock and both must apply.
        sim.schedule(0.0, lambda: server.source_update_arrival(0))
        sim.schedule(0.1, lambda: server.source_update_arrival(0))
        sim.run()
        assert server.items[0].updates_executed == 2
        assert server.items[0].applied_seq == 2

    def test_flood_of_updates_starves_query(self):
        """Updates outrank queries: a saturating update stream pushes a
        query past its firm deadline (IMU's failure mode)."""
        sim, server = make_server(n_items=2, update_exec=0.3)
        for k in range(20):
            sim.schedule(0.2 * k, lambda: server.source_update_arrival(0))
        txn = submit_query(server, arrival=0.1, exec_time=0.2, deadline=1.0, items=(1,))
        sim.run()
        assert outcome_of(server, txn).outcome is Outcome.DEADLINE_MISS


class TestAlternativeFreshnessMetric:
    def test_time_based_metric_plugs_in(self):
        sim = Simulator()
        items = ItemTable.uniform(2, ideal_period=100.0, update_exec_time=0.5)
        server = Server(
            sim,
            items,
            StubPolicy(apply_updates=False),
            ServerConfig(freshness_metric=TimeFreshness(half_life=1.0)),
        )
        sim.schedule(0.0, lambda: server.source_update_arrival(0))  # dropped
        # Query arrives 3 half-lives after the drop: freshness ~ 1/8.
        txn = QueryTransaction(
            txn_id=server.next_txn_id(),
            arrival=3.0,
            exec_time=0.1,
            items=(0,),
            relative_deadline=2.0,
            freshness_req=0.9,
        )
        sim.schedule(3.0, lambda: server.submit_query(txn), priority=ARRIVAL_EVENT_PRIORITY)
        sim.run()
        record = server.records[-1]
        assert record.outcome is Outcome.DATA_STALE
        assert record.freshness == pytest.approx(0.125, abs=0.02)


class TestKillInsteadOfRestart:
    def test_ablation_kills_2plhp_victims(self):
        sim = Simulator()
        items = ItemTable.uniform(2, ideal_period=100.0, update_exec_time=0.5)
        server = Server(
            sim, items, StubPolicy(), ServerConfig(restart_aborted_queries=False)
        )
        txn = QueryTransaction(
            txn_id=server.next_txn_id(),
            arrival=0.0,
            exec_time=1.0,
            items=(0,),
            relative_deadline=10.0,
        )
        sim.schedule(0.0, lambda: server.submit_query(txn), priority=ARRIVAL_EVENT_PRIORITY)
        sim.schedule(0.5, lambda: server.source_update_arrival(0))
        sim.run()
        record = server.records[-1]
        assert record.outcome is Outcome.DEADLINE_MISS
        assert record.finish_time == pytest.approx(0.5)


class TestRandomizedConservation:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_every_query_resolves_under_chaotic_load(self, seed):
        """Fuzz: random queries and updates; exactly one outcome each,
        and the simulator drains."""
        rng = random.Random(seed)
        sim, server = make_server(n_items=8, update_exec=0.2)
        txns = []
        for _ in range(120):
            arrival = rng.uniform(0, 20)
            n_items = rng.randint(1, 3)
            items = tuple(rng.sample(range(8), n_items))
            txns.append(
                submit_query(
                    server,
                    arrival=arrival,
                    exec_time=rng.uniform(0.01, 0.4),
                    deadline=rng.uniform(0.05, 3.0),
                    items=items,
                )
            )
        for _ in range(80):
            t = rng.uniform(0, 20)
            item = rng.randrange(8)
            sim.schedule(
                t,
                lambda i=item: server.source_update_arrival(i),
                priority=ARRIVAL_EVENT_PRIORITY,
            )
        sim.run(until=40.0)
        assert len(server.records) == len(txns)
        assert sorted(r.txn_id for r in server.records) == sorted(
            t.txn_id for t in txns
        )
        # Sanity: the CPU never ran two things at once (busy time bounded
        # by the horizon we simulated).
        assert server.busy_time() <= 40.0 + 1e-6
