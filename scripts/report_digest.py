"""Cross-tree byte-identity battery: digest reports over a config grid.

Runs a battery of configurations spanning every policy, several update
traces, penalty profiles (naive and non-naive, so both admission gates
fire), seeds, scales, and a fault scenario, then prints one SHA-256
digest per cell plus a combined digest.  Run it on two checkouts and
diff the output to verify that a performance change kept the simulation
*byte-identical* — the contract every perf PR must satisfy.

Usage::

    PYTHONPATH=src python scripts/report_digest.py > digests.json
    # ... switch trees ...
    PYTHONPATH=src python scripts/report_digest.py > digests2.json
    diff digests.json digests2.json

The serialization matches tests/test_determinism_regression.py: float
fields go through ``float.hex()`` so the comparison is exact bits, not
a rounded repr.
"""

from __future__ import annotations

import hashlib
import json
import sys

from repro.core.usm import TABLE2_PROFILES, PenaltyProfile
from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults.scenarios import canned


def stable_report_bytes(report) -> bytes:
    """Exact-bits serialization of every result field of a report."""
    by_name = lambda kv: kv[0].value  # noqa: E731
    payload = {
        "policy": report.policy_name,
        "counts": {
            o.value: n
            for o, n in sorted(report.outcome_counts.items(), key=by_name)
        },
        "submitted": report.queries_submitted,
        "usm": report.usm.hex(),
        "total_usm": report.total_usm.hex(),
        "ratios": {
            o.value: r.hex() for o, r in sorted(report.ratios.items(), key=by_name)
        },
        "components": {k: v.hex() for k, v in sorted(report.components.items())},
        "update_arrivals": report.update_arrivals,
        "updates_executed": report.updates_executed,
        "updates_dropped": report.updates_dropped,
        "query_access_counts": report.query_access_counts,
        "update_counts_original": report.update_counts_original,
        "update_counts_executed": report.update_counts_executed,
        "busy": {k: v.hex() for k, v in sorted(report.busy_by_class.items())},
        "events_fired": report.events_fired,
        "summary": report.summary(),
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def battery() -> list:
    smoke = SCALES["smoke"]
    small = SCALES["small"]
    naive = PenaltyProfile.naive()
    cells = []
    # Every policy x two traces x two profiles (the non-naive profile
    # activates the endangered-queries USM gate) at smoke scale.
    for policy in ("unit", "imu", "odu", "qmf", "elastic"):
        for trace in ("med-unif", "high-pos"):
            for profile in (naive, TABLE2_PROFILES["gt1-high-cfm"]):
                for seed in (7, 11):
                    cells.append(
                        ExperimentConfig(
                            policy=policy,
                            update_trace=trace,
                            profile=profile,
                            seed=seed,
                            scale=smoke,
                        )
                    )
    # Deeper queues at small scale for the hot policies.
    for policy in ("unit", "qmf"):
        for profile in (naive, TABLE2_PROFILES["gt1-high-cr"]):
            cells.append(
                ExperimentConfig(
                    policy=policy,
                    update_trace="med-unif",
                    profile=profile,
                    seed=7,
                    scale=small,
                )
            )
    # A fault scenario (trace-shaping + live slowdown).
    for name in ("update-storm", "pile-up"):
        cells.append(
            ExperimentConfig(
                policy="unit",
                update_trace="med-unif",
                seed=7,
                scale=smoke,
                faults=canned(name, smoke.horizon, smoke.n_items),
            )
        )
    return cells


def main() -> int:
    out = {}
    combined = hashlib.sha256()
    for config in battery():
        label = (
            f"{config.policy}/{config.update_trace}/"
            f"{config.profile.name or 'naive'}/seed{config.seed}/"
            f"h{config.scale.horizon:.0f}"
            + (f"/faults:{config.faults.name}" if config.faults is not None else "")
        )
        blob = stable_report_bytes(run_experiment(config))
        digest = hashlib.sha256(blob).hexdigest()
        combined.update(blob)
        out[label] = digest
        print(f"# {label}: {digest}", file=sys.stderr)
    out["__combined__"] = combined.hexdigest()
    json.dump(out, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
