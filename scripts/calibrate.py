"""Calibration search: score workload shapes against the paper's
qualitative claims (used during development; kept for reproducibility).

Shape targets scored per calibration:
  1. UNIT first in every cell (strongest weight).
  2. ODU is the strongest baseline at unif/neg.
  3. QMF below ODU at unif (med volume).
  4. IMU near ODU at pos (med volume).
  5. IMU and QMF collapse (<0.1) at high volume.
  6. ODU close to UNIT at neg (gap smaller than at unif).
"""

import dataclasses
import itertools
import sys

from repro.experiments.config import ExperimentConfig, SCALES
from repro.experiments.runner import run_experiment
from repro.core.unit import UnitConfig
from repro.core.usm import PenaltyProfile

CELLS = ["low-unif", "med-unif", "high-unif", "med-pos", "med-neg", "high-neg"]
POLICIES = ["imu", "odu", "qmf", "unit"]


def run_cell(policy, trace, scale, zipf, dl_factor, escalate, seed=3):
    uc = UnitConfig(
        profile=PenaltyProfile.naive(), control_period=1.0, degrade_rounds=64
    )
    config = ExperimentConfig(
        policy=policy,
        update_trace=trace,
        seed=seed,
        scale=scale,
        zipf_skew=zipf,
        unit=uc,
        deadline_high_base="mean",
        deadline_high_factor=dl_factor,
    )
    import repro.experiments.runner as runner_mod

    orig = runner_mod.make_policy

    def patched(cfg, streams):
        policy_obj = orig(cfg, streams)
        if cfg.policy == "unit":
            bind = policy_obj.bind

            def bind_and_set(server):
                bind(server)
                policy_obj.modulator.escalate = escalate

            policy_obj.bind = bind_and_set
        return policy_obj

    runner_mod.make_policy = patched
    try:
        return run_experiment(config).usm
    finally:
        runner_mod.make_policy = orig


def score(grid):
    total = 0.0
    notes = []
    for cell in CELLS:
        best_rival = max(grid[cell][p] for p in ("imu", "odu", "qmf"))
        margin = grid[cell]["unit"] - best_rival
        total += 3.0 * min(margin, 0.15)  # reward winning, capped
        if margin < 0:
            notes.append(f"unit loses {cell} by {-margin:.3f}")
    if grid["med-unif"]["qmf"] < grid["med-unif"]["odu"]:
        total += 0.2
    else:
        notes.append("qmf >= odu at med-unif")
    if grid["high-unif"]["imu"] < 0.1 and grid["high-unif"]["qmf"] < 0.25:
        total += 0.2
    gap_unif = grid["med-unif"]["unit"] - grid["med-unif"]["odu"]
    gap_neg = grid["med-neg"]["unit"] - grid["med-neg"]["odu"]
    if 0 <= gap_neg <= gap_unif:
        total += 0.2  # ODU closes the gap under neg correlation
    total += 0.3 * grid["med-unif"]["unit"]  # prefer healthy absolute level
    return total, notes


def main():
    scale_base = SCALES["small"]
    results = []
    for qutil, zipf, escalate in itertools.product(
        (0.1, 0.3, 0.65), (0.9, 1.3, 1.8), (True, False)
    ):
        scale = dataclasses.replace(
            scale_base, query_utilization=qutil, mean_update_exec=0.15
        )
        grid = {}
        for cell in CELLS:
            grid[cell] = {
                p: run_cell(p, cell, scale, zipf, 3.0, escalate) for p in POLICIES
            }
        s, notes = score(grid)
        results.append((s, qutil, zipf, escalate, grid, notes))
        print(
            f"[cal] q={qutil} zipf={zipf} esc={escalate}: score={s:+.3f} "
            f"med-unif={[round(grid['med-unif'][p], 2) for p in POLICIES]} "
            f"notes={notes[:3]}",
            flush=True,
        )
    results.sort(reverse=True, key=lambda r: r[0])
    print("\nBEST:")
    for s, qutil, zipf, esc, grid, notes in results[:3]:
        print(f"  score={s:+.3f} q={qutil} zipf={zipf} esc={esc}")
        for cell in CELLS:
            print(f"    {cell}: {[round(grid[cell][p], 3) for p in POLICIES]}")


if __name__ == "__main__":
    sys.exit(main())
