"""Calibration search: score workload shapes against the paper's
qualitative claims (used during development; kept for reproducibility).

Shape targets scored per calibration:
  1. UNIT first in every cell (strongest weight).
  2. ODU is the strongest baseline at unif/neg.
  3. QMF below ODU at unif (med volume).
  4. IMU near ODU at pos (med volume).
  5. IMU and QMF collapse (<0.1) at high volume.
  6. ODU close to UNIT at neg (gap smaller than at unif).

Each candidate shape is a full POLICIES × CELLS grid, executed through
the sweep pipeline (shared cached workloads per (trace, seed); honors
``REPRO_SWEEP_WORKERS``).
"""

import dataclasses
import itertools
import sys

from repro.core.unit import UnitConfig
from repro.core.usm import PenaltyProfile
from repro.experiments.config import ExperimentConfig, SCALES
from repro.experiments.sweep import run_grid

CELLS = ["low-unif", "med-unif", "high-unif", "med-pos", "med-neg", "high-neg"]
POLICIES = ["imu", "odu", "qmf", "unit"]


def run_shape(scale, zipf, dl_factor, escalate, seed=3):
    """USM for every (cell, policy) pair of one candidate shape."""
    profile = PenaltyProfile.naive()
    base = ExperimentConfig(
        policy="unit",
        update_trace=CELLS[0],
        seed=seed,
        scale=scale,
        zipf_skew=zipf,
        unit=UnitConfig(
            profile=profile,
            control_period=1.0,
            degrade_rounds=64,
            escalate_modulation=escalate,
        ),
        deadline_high_base="mean",
        deadline_high_factor=dl_factor,
    )
    reports = run_grid(POLICIES, CELLS, [profile], scale, seed=seed, base=base)
    return {
        cell: {p: reports[(p, cell, profile.name or "naive")].usm for p in POLICIES}
        for cell in CELLS
    }


def score(grid):
    total = 0.0
    notes = []
    for cell in CELLS:
        best_rival = max(grid[cell][p] for p in ("imu", "odu", "qmf"))
        margin = grid[cell]["unit"] - best_rival
        total += 3.0 * min(margin, 0.15)  # reward winning, capped
        if margin < 0:
            notes.append(f"unit loses {cell} by {-margin:.3f}")
    if grid["med-unif"]["qmf"] < grid["med-unif"]["odu"]:
        total += 0.2
    else:
        notes.append("qmf >= odu at med-unif")
    if grid["high-unif"]["imu"] < 0.1 and grid["high-unif"]["qmf"] < 0.25:
        total += 0.2
    gap_unif = grid["med-unif"]["unit"] - grid["med-unif"]["odu"]
    gap_neg = grid["med-neg"]["unit"] - grid["med-neg"]["odu"]
    if 0 <= gap_neg <= gap_unif:
        total += 0.2  # ODU closes the gap under neg correlation
    total += 0.3 * grid["med-unif"]["unit"]  # prefer healthy absolute level
    return total, notes


def main():
    scale_base = SCALES["small"]
    results = []
    for qutil, zipf, escalate in itertools.product(
        (0.1, 0.3, 0.65), (0.9, 1.3, 1.8), (True, False)
    ):
        scale = dataclasses.replace(
            scale_base, query_utilization=qutil, mean_update_exec=0.15
        )
        grid = run_shape(scale, zipf, 3.0, escalate)
        s, notes = score(grid)
        results.append((s, qutil, zipf, escalate, grid, notes))
        print(
            f"[cal] q={qutil} zipf={zipf} esc={escalate}: score={s:+.3f} "
            f"med-unif={[round(grid['med-unif'][p], 2) for p in POLICIES]} "
            f"notes={notes[:3]}",
            flush=True,
        )
    results.sort(reverse=True, key=lambda r: r[0])
    print("\nBEST:")
    for s, qutil, zipf, esc, grid, notes in results[:3]:
        print(f"  score={s:+.3f} q={qutil} zipf={zipf} esc={esc}")
        for cell in CELLS:
            print(f"    {cell}: {[round(grid[cell][p], 3) for p in POLICIES]}")


if __name__ == "__main__":
    sys.exit(main())
