"""Profile one experiment run and save the cProfile artifact.

CI runs this after the perf benchmarks and uploads the output
directory, so every perf-bench run carries the profile that explains
its number.  Locally it is the entry point of the profiling workflow in
``docs/performance.md``::

    PYTHONPATH=src python scripts/profile_run.py --scale smoke --out perf-profile

Writes ``profile_<scale>.prof`` (load with ``pstats`` or snakeviz) and
``profile_<scale>.txt`` (top functions by cumulative and total time)
into the output directory.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
from pathlib import Path

from repro.experiments.config import ExperimentConfig, SCALES
from repro.experiments.runner import run_experiment
from repro.workload.cache import default_cache


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=sorted(SCALES))
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--policy", default="unit")
    parser.add_argument("--trace", default="med-unif")
    parser.add_argument("--out", default="perf-profile")
    parser.add_argument(
        "--top", type=int, default=40, help="rows per table in the text summary"
    )
    args = parser.parse_args()

    config = ExperimentConfig(
        policy=args.policy,
        update_trace=args.trace,
        seed=args.seed,
        scale=SCALES[args.scale],
    )
    # Warm the workload cache (and the interpreter) outside the profile
    # so the numbers reflect the event loop, not trace generation.
    default_cache().warm([config])
    run_experiment(config)

    profiler = cProfile.Profile()
    profiler.enable()
    report = run_experiment(config)
    profiler.disable()

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    prof_path = out_dir / f"profile_{args.scale}.prof"
    profiler.dump_stats(prof_path)

    text = io.StringIO()
    stats = pstats.Stats(profiler, stream=text)
    text.write(
        f"profile: policy={args.policy} trace={args.trace} "
        f"scale={args.scale} seed={args.seed} "
        f"events_fired={report.events_fired}\n\n"
    )
    for sort in ("cumulative", "tottime"):
        text.write(f"== top {args.top} by {sort} ==\n")
        stats.sort_stats(sort).print_stats(args.top)
        text.write("\n")
    txt_path = out_dir / f"profile_{args.scale}.txt"
    txt_path.write_text(text.getvalue(), encoding="utf-8")

    print(f"wrote {prof_path} and {txt_path} ({report.events_fired} events)")


if __name__ == "__main__":
    main()
