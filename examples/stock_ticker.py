"""Stock-portfolio monitoring: the paper's Section 1 motivating scenario.

A web-database server ingests periodic price ticks for a universe of
symbols while traders query moving averages with tight latency
guarantees ("modern stock trading web sites offer guarantees, e.g.
2 seconds") and a 90 % freshness requirement.  A handful of symbols are
heavily traded (hot); most see only occasional interest.

The example builds this workload *directly against the library's mid
layer* (no experiment-harness involvement) to show how the pieces
compose:

* an :class:`~repro.db.items.ItemTable` holds one item per symbol with
  its tick period and apply cost;
* tick arrivals and trader queries are scheduled on the simulator;
* the :class:`~repro.core.unit.UnitPolicy` decides which symbols' ticks
  to keep applying and which queries to admit.

It then contrasts UNIT with IMU (apply every tick) and prints which
symbols UNIT chose to degrade — expect the cold tail, never the hot
names.

Run:
    python examples/stock_ticker.py
"""

import random

from repro.core.baselines import ImuPolicy
from repro.core.unit import UnitConfig, UnitPolicy
from repro.core.usm import PenaltyProfile
from repro.db.items import DataItem, ItemTable
from repro.db.server import ARRIVAL_EVENT_PRIORITY, Server, ServerConfig
from repro.db.transactions import Outcome, QueryTransaction
from repro.experiments.report import ascii_table
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

HORIZON = 600.0  # ten minutes of trading
SYMBOLS = [
    ("MEGA", 240, 1.0),  # (name, queries/minute, tick period seconds)
    ("BLUE", 120, 1.0),
    ("CHIP", 60, 2.0),
    ("CORE", 30, 2.0),
    ("MIDC", 15, 5.0),
    ("SMLC", 8, 5.0),
    # 40 penny stocks: tick constantly, almost never queried.  Applying
    # every tick alone demands ~2x the CPU -- IMU drowns; UNIT should
    # degrade exactly these and keep the traded names fresh.
] + [(f"PNY{i:02d}", 0.5, 1.0) for i in range(40)]

TICK_APPLY_COST = 0.05  # seconds of CPU per applied tick (index recompute)
QUERY_COST = 0.03  # seconds per moving-average query
DEADLINE = 2.0  # the E*Trade-style guarantee


def build_universe() -> ItemTable:
    return ItemTable(
        [
            DataItem(
                item_id=index,
                ideal_period=tick_period,
                update_exec_time=TICK_APPLY_COST,
            )
            for index, (_, _, tick_period) in enumerate(SYMBOLS)
        ]
    )


def schedule_workload(sim: Simulator, server: Server, rng: random.Random) -> int:
    # Price ticks: strictly periodic per symbol with a random phase.
    for index, (_, _, period) in enumerate(SYMBOLS):
        t = rng.uniform(0, period)
        while t <= HORIZON:
            sim.schedule(
                t,
                lambda i=index: server.source_update_arrival(i),
                priority=ARRIVAL_EVENT_PRIORITY,
            )
            t += period

    # Trader queries: Poisson per symbol at its popularity.
    n_queries = 0
    for index, (_, per_minute, _) in enumerate(SYMBOLS):
        rate = per_minute / 60.0
        t = rng.expovariate(rate) if rate > 0 else HORIZON + 1
        while t <= HORIZON:
            txn = QueryTransaction(
                txn_id=server.next_txn_id(),
                arrival=t,
                exec_time=QUERY_COST * rng.uniform(0.5, 2.0),
                items=(index,),
                relative_deadline=DEADLINE,
                freshness_req=0.9,
            )
            sim.schedule(
                t, lambda q=txn: server.submit_query(q), priority=ARRIVAL_EVENT_PRIORITY
            )
            n_queries += 1
            t += rng.expovariate(rate)
    return n_queries


def run(policy_name: str):
    streams = RandomStreams(2024)
    sim = Simulator()
    items = build_universe()
    if policy_name == "unit":
        policy = UnitPolicy(
            # Escalation off: this workload has a crisp hot/cold split,
            # so walking the ticket threshold into protected symbols
            # could only hurt.  The 2-second guarantee is ~60x the query
            # execution time, which makes Eq. 6's per-access protection
            # (qe/qt ~ 0.015) negligible next to Eq. 7's ~0.5 update
            # increment -- rescale it so one access weighs like one tick.
            UnitConfig(
                profile=PenaltyProfile.naive(),
                control_period=1.0,
                escalate_modulation=False,
                access_ticket_scale=30.0,
            ),
            streams.stream("unit-lottery"),
        )
    else:
        policy = ImuPolicy()
    server = Server(sim, items, policy, ServerConfig())
    schedule_workload(sim, server, streams.stream("workload"))
    sim.run(until=HORIZON + 2 * DEADLINE)
    return server, policy


def main() -> None:
    rows = []
    unit_server = None
    for name in ("imu", "unit"):
        server, policy = run(name)
        total = server.queries_submitted
        counts = server.outcome_counts
        rows.append(
            [
                policy.describe(),
                total,
                f"{counts[Outcome.SUCCESS] / total:.3f}",
                f"{counts[Outcome.REJECTED] / total:.3f}",
                f"{counts[Outcome.DEADLINE_MISS] / total:.3f}",
                f"{counts[Outcome.DATA_STALE] / total:.3f}",
                server.items.totals()["executed"],
            ]
        )
        if name == "unit":
            unit_server = server

    print(
        ascii_table(
            ["policy", "queries", "success", "reject", "DMF", "DSF", "ticks applied"],
            rows,
            title="Stock monitoring: 2-second guarantees, 90% freshness",
        )
    )

    print()
    degraded = [
        (SYMBOLS[item.item_id][0], item.current_period / item.ideal_period)
        for item in unit_server.items.degraded_items()
    ]
    degraded.sort(key=lambda pair: -pair[1])
    if degraded:
        hot_names = {name for name, per_minute, _ in SYMBOLS if per_minute >= 12}
        print("Symbols whose tick application UNIT degraded (period stretch):")
        for name, stretch in degraded[:12]:
            marker = "  <-- HOT (unexpected!)" if name in hot_names else ""
            print(f"  {name:<6} x{stretch:.1f}{marker}")
        if len(degraded) > 12:
            print(f"  ... and {len(degraded) - 12} more")
    else:
        print("UNIT left every symbol at its full tick rate (no overload).")


if __name__ == "__main__":
    main()
