"""Writing your own transaction-management policy.

The :class:`~repro.db.policy_api.ServerPolicy` interface is the
extension point the whole evaluation is built on: implement four small
hooks and the simulator, workload generators, and metrics all work
unchanged.

This example implements **FreshFirst**, a deliberately simple strawman:

* admit a query only if the server is less than ``max_inflight`` deep
  (a fixed concurrency cap instead of UNIT's EST reasoning);
* apply an update only if the item was queried recently (a poor man's
  demand-driven freshness without UNIT's tickets or ODU's waiting).

It then races FreshFirst against UNIT on the same workload.  Expect
UNIT to win — but the point is how little code a new policy needs.

Run:
    python examples/custom_policy.py
"""

from repro.db.items import DataItem
from repro.db.policy_api import ServerPolicy
from repro.db.transactions import QueryTransaction
from repro.experiments.config import ExperimentConfig, SCALES
from repro.experiments.report import ascii_table
from repro.experiments.runner import run_experiment
import repro.experiments.runner as runner_mod
from repro.db.transactions import Outcome


class FreshFirstPolicy(ServerPolicy):
    """Recency-gated updates plus a fixed admission cap."""

    def __init__(self, recency_window: float = 30.0, max_inflight: int = 8) -> None:
        self.recency_window = recency_window
        self.max_inflight = max_inflight
        self._last_access: dict = {}

    def admit_query(self, query: QueryTransaction, server) -> bool:
        inflight = len(server.ready.ready_queries())
        if server.running_transaction() is not None:
            inflight += 1
        return inflight < self.max_inflight

    def on_query_admitted(self, query: QueryTransaction, server) -> None:
        for item_id in query.items:
            self._last_access[item_id] = server.now

    def should_apply_update(self, item: DataItem, server) -> bool:
        last = self._last_access.get(item.item_id)
        return last is not None and server.now - last <= self.recency_window

    def describe(self) -> str:
        return "FreshFirst"


def run_with_policy(policy_name: str, custom=None):
    config = ExperimentConfig(
        policy="unit",  # placeholder; swapped below for the custom policy
        update_trace="med-unif",
        seed=7,
        scale=SCALES["small"],
    )
    if custom is None:
        config.policy = policy_name
        return run_experiment(config)

    original = runner_mod.make_policy
    runner_mod.make_policy = lambda cfg, streams: custom
    try:
        return run_experiment(config)
    finally:
        runner_mod.make_policy = original


def main() -> None:
    rows = []
    for label, report in (
        ("FreshFirst (this file)", run_with_policy("custom", FreshFirstPolicy())),
        ("UNIT", run_with_policy("unit")),
        ("ODU", run_with_policy("odu")),
    ):
        rows.append(
            [
                label,
                f"{report.usm:+.4f}",
                f"{report.ratios[Outcome.SUCCESS]:.3f}",
                f"{report.ratios[Outcome.REJECTED]:.3f}",
                f"{report.ratios[Outcome.DEADLINE_MISS]:.3f}",
                f"{report.ratios[Outcome.DATA_STALE]:.3f}",
            ]
        )
    print(
        ascii_table(
            ["policy", "USM", "success", "reject", "DMF", "DSF"],
            rows,
            title="A 40-line custom policy vs the built-ins (med-unif)",
        )
    )


if __name__ == "__main__":
    main()
