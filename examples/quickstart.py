"""Quickstart: run one simulation per policy and compare USM.

Builds the paper's medium-volume, uniformly-distributed update workload
(``med-unif``) over a synthetic cello99a-like query trace, runs all four
transaction-management policies on the *identical* workload, and prints
the resulting User Satisfaction Metric decomposition.

Run:
    python examples/quickstart.py [--scale smoke|small|paper] [--seed N]
"""

import argparse

from repro import build_experiment, run_experiment
from repro.db.transactions import Outcome
from repro.experiments.report import ascii_table, bar_chart


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("smoke", "small", "paper"))
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--trace", default="med-unif")
    args = parser.parse_args()

    rows = []
    usm_series = {}
    for policy in ("imu", "odu", "qmf", "unit"):
        config = build_experiment(
            policy=policy, update_trace=args.trace, seed=args.seed, scale=args.scale
        )
        report = run_experiment(config)
        rows.append(
            [
                report.policy_name,
                f"{report.usm:+.4f}",
                f"{report.ratios[Outcome.SUCCESS]:.3f}",
                f"{report.ratios[Outcome.REJECTED]:.3f}",
                f"{report.ratios[Outcome.DEADLINE_MISS]:.3f}",
                f"{report.ratios[Outcome.DATA_STALE]:.3f}",
                f"{report.updates_dropped}/{report.update_arrivals}",
                f"{report.wall_seconds:.1f}s",
            ]
        )
        usm_series[report.policy_name] = report.usm

    print(
        ascii_table(
            ["policy", "USM", "success", "reject", "DMF", "DSF", "upd dropped", "wall"],
            rows,
            title=f"Policy comparison on {args.trace} (seed {args.seed}, {args.scale} scale)",
        )
    )
    print()
    print(bar_chart(usm_series, title="USM (naive = success ratio)"))


if __name__ == "__main__":
    main()
