"""Heterogeneous user preferences: premium vs free tiers.

The paper assumes one system-wide penalty profile and notes the
framework "can be easily extended to support multiple preferences"
(Section 3.1).  This example exercises that extension: every query
carries its *own* :class:`~repro.core.usm.PenaltyProfile`, the
admission controller prices both of its checks per user (the predicted
miss vs rejection trade-off, and the endangered-queries USM check), and
the :class:`~repro.core.usm.MixedUsmAccumulator` reports satisfaction
per class.

The two classes price failures in opposite ways: **traders** hate a
broken promise (C_fm high, C_r low — "only admit me if you will
deliver"), while **browsers** hate being turned away (C_r high, C_fm
low — "let me try, I don't mind a slow page").  Expect mirror-image
outcome mixes from the same server: traders collect rejections and
almost no misses; browsers are always admitted and absorb the misses.

Run:
    python examples/user_classes.py
"""

import random

from repro.core.unit import UnitConfig, UnitPolicy
from repro.core.usm import MixedUsmAccumulator, PenaltyProfile
from repro.db.items import ItemTable
from repro.db.server import ARRIVAL_EVENT_PRIORITY, Server, ServerConfig
from repro.db.transactions import Outcome, QueryTransaction
from repro.experiments.report import ascii_table
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

HORIZON = 400.0
N_ITEMS = 64

TRADER = PenaltyProfile(c_r=0.1, c_fm=1.0, c_fs=1.0, name="trader")
BROWSER = PenaltyProfile(c_r=1.0, c_fm=0.1, c_fs=0.1, name="browser")


def main() -> None:
    streams = RandomStreams(31)
    rng = streams.stream("workload")
    sim = Simulator()
    items = ItemTable.uniform(N_ITEMS, ideal_period=8.0, update_exec_time=0.06)
    policy = UnitPolicy(
        UnitConfig(profile=BROWSER, control_period=1.0),  # system default
        streams.stream("unit-lottery"),
    )
    server = Server(sim, items, policy, ServerConfig())

    # Periodic updates taking ~half the CPU.
    for item in items:
        t = rng.uniform(0, item.ideal_period)
        while t <= HORIZON:
            sim.schedule(
                t,
                lambda i=item.item_id: server.source_update_arrival(i),
                priority=ARRIVAL_EVENT_PRIORITY,
            )
            t += item.ideal_period

    # Query stream: 30% traders, 70% browsers, same behaviour otherwise.
    accumulator = MixedUsmAccumulator(default_profile=BROWSER)
    t = 0.0
    while t <= HORIZON:
        t += rng.expovariate(12.0)  # with updates: moderate overload
        trader = rng.random() < 0.3
        txn = QueryTransaction(
            txn_id=server.next_txn_id(),
            arrival=t,
            exec_time=rng.uniform(0.02, 0.08),
            items=(rng.randrange(N_ITEMS),),
            relative_deadline=rng.uniform(0.1, 0.4),
            freshness_req=0.9,
            profile=TRADER if trader else BROWSER,
            user_class="trader" if trader else "browser",
        )
        sim.schedule(
            t, lambda q=txn: server.submit_query(q), priority=ARRIVAL_EVENT_PRIORITY
        )
    sim.run(until=HORIZON + 1.0)

    for record in server.records:
        accumulator.record(record.outcome, record.profile, record.user_class)

    rows = []
    for user_class in accumulator.classes():
        ratios = accumulator.class_ratios(user_class)
        rows.append(
            [
                user_class,
                f"{accumulator.class_average_usm(user_class):+.4f}",
                f"{ratios[Outcome.SUCCESS]:.3f}",
                f"{ratios[Outcome.REJECTED]:.3f}",
                f"{ratios[Outcome.DEADLINE_MISS]:.3f}",
                f"{ratios[Outcome.DATA_STALE]:.3f}",
            ]
        )
    print(
        ascii_table(
            ["class", "USM", "success", "reject", "DMF", "DSF"],
            rows,
            title="Per-class satisfaction under one shared server (UNIT)",
        )
    )
    print(
        "\nExpected shape: traders (C_fm >> C_r) show high rejection and"
        "\nnear-zero DMF; browsers (C_r >> C_fm) are never rejected and"
        "\nabsorb the misses instead -- opposite mixes from one server."
    )


if __name__ == "__main__":
    main()
