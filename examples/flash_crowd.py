"""Flash crowd on a news aggregator: watching the feedback loop work.

A personalized news/blog aggregation service (another of the paper's
Section 1 applications) serves reads over a database of stories that
are refreshed periodically from upstream feeds.  A breaking-news flash
crowd multiplies the query rate for a couple of minutes.

This example runs UNIT through the crowd and samples the *control
state* over time — windowed USM, the admission knob ``C_flex``, the
number of degraded feeds, and the cumulative outcome mix — so you can
watch the Load Balancing Controller react: tighten/degrade as the crowd
hits, relax after it passes.

Run:
    python examples/flash_crowd.py
"""

import dataclasses

from repro.core.unit import UnitConfig, UnitPolicy
from repro.core.usm import PenaltyProfile
from repro.db.server import ARRIVAL_EVENT_PRIORITY, CONTROL_EVENT_PRIORITY, Server, ServerConfig
from repro.db.transactions import Outcome, QueryTransaction
from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.report import ascii_table
from repro.experiments.runner import build_workload, item_table_from_trace
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


@dataclasses.dataclass
class Sample:
    time: float
    windowed_usm: float
    c_flex: float
    degraded_items: int
    rejected: int
    missed: int
    stale: int
    succeeded: int


def main() -> None:
    # One long, violent flash crowd instead of background burstiness.
    scale = SCALES["small"]
    config = ExperimentConfig(
        policy="unit",
        update_trace="low-unif",  # light background updates: the crowd is the story
        seed=11,
        scale=scale,
        burst_factor=6.0,
        normal_dwell=150.0,
        burst_dwell=30.0,
    )
    streams = RandomStreams(config.seed)
    query_trace, update_trace = build_workload(config, streams)

    sim = Simulator()
    items = item_table_from_trace(update_trace)
    policy = UnitPolicy(
        UnitConfig(profile=PenaltyProfile.naive(), control_period=1.0),
        streams.stream("unit-lottery"),
    )
    server = Server(sim, items, policy, ServerConfig())

    for spec in query_trace.queries:
        txn = QueryTransaction(
            txn_id=server.next_txn_id(),
            arrival=spec.arrival,
            exec_time=spec.exec_time,
            items=spec.items,
            relative_deadline=spec.relative_deadline,
            freshness_req=spec.freshness_req,
        )
        sim.schedule(
            spec.arrival,
            lambda q=txn: server.submit_query(q),
            priority=ARRIVAL_EVENT_PRIORITY,
        )
    for arrival, item_id in update_trace.arrival_events():
        sim.schedule(
            arrival,
            lambda i=item_id: server.source_update_arrival(i),
            priority=ARRIVAL_EVENT_PRIORITY,
        )

    samples = []

    def sample():
        usm = policy.usm_window.average_usm(sim.now)
        samples.append(
            Sample(
                time=sim.now,
                windowed_usm=usm if usm is not None else float("nan"),
                c_flex=policy.admission.c_flex,
                degraded_items=policy.modulator.degraded_count(),
                rejected=server.outcome_counts[Outcome.REJECTED],
                missed=server.outcome_counts[Outcome.DEADLINE_MISS],
                stale=server.outcome_counts[Outcome.DATA_STALE],
                succeeded=server.outcome_counts[Outcome.SUCCESS],
            )
        )
        if sim.now + 20.0 <= scale.horizon:
            sim.schedule_after(20.0, sample, priority=CONTROL_EVENT_PRIORITY)

    sim.schedule(20.0, sample, priority=CONTROL_EVENT_PRIORITY)
    sim.run(until=scale.horizon + 2.0)

    rows = [
        [
            f"{s.time:.0f}",
            f"{s.windowed_usm:+.3f}",
            f"{s.c_flex:.3f}",
            s.degraded_items,
            s.succeeded,
            s.rejected,
            s.missed,
            s.stale,
        ]
        for s in samples
    ]
    print(
        ascii_table(
            ["t(s)", "USM(win)", "C_flex", "degraded", "ok", "rej", "DMF", "DSF"],
            rows,
            title="UNIT riding a flash crowd (cumulative outcome counts)",
        )
    )
    total = server.queries_submitted
    print(
        f"\nfinal: {total} queries, success ratio "
        f"{server.outcome_counts[Outcome.SUCCESS] / total:.3f}, "
        f"updates dropped {items.totals()['dropped']}/{items.totals()['arrivals']}"
    )


if __name__ == "__main__":
    main()
