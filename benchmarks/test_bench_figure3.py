"""Figure 3 — distributions of accesses and updates over data,
original vs UNIT-degraded.

Shape assertions (paper Section 4.2):
* med-unif: UNIT's *kept* updates follow the query distribution — the
  executed-update histogram correlates with the access histogram more
  than the (uniform) original does;
* med-neg: a large share of updates is dropped, concentrated on
  hot-updated / cold-queried items.
"""

from repro.experiments.figures import figure3, render_figure3


def test_bench_figure3(benchmark, bench_scale, bench_seed, publish):
    cases = benchmark.pedantic(
        figure3, args=(bench_scale,), kwargs={"seed": bench_seed}, rounds=1, iterations=1
    )

    unif = cases["med-unif"]
    assert unif.drop_fraction > 0.2, "UNIT should shed a meaningful share at med"
    assert (
        unif.corr_executed_vs_queries > unif.corr_original_vs_queries + 0.05
    ), "kept updates should track the query distribution (Fig 3b)"

    neg = cases["med-neg"]
    assert neg.drop_fraction > 0.3, "negatively-correlated updates are mostly shed"
    assert neg.corr_executed_vs_queries > neg.corr_original_vs_queries, (
        "dropping should concentrate on hot-updated/cold-queried items (Fig 3c)"
    )

    publish("figure3", render_figure3(cases), benchmark)
