"""Performance benchmarks: raw engine throughput and sweep wall-clock.

Unlike the figure/table benchmarks these do not reproduce paper output;
they guard the simulator's speed.  Two measurements:

* single-run events/sec — one UNIT run with a pre-warmed workload
  cache, so the number reflects simulation speed, not trace generation;
* paired-grid wall-clock — the full 5 policies × 3 traces × 3 penalty
  profiles sweep (45 cells) through :func:`run_grid`, where the
  workload cache collapses 45 generations into 3.

Both write their numbers into ``BENCH_perf.json`` at the repo root,
keyed by section and ``REPRO_BENCH_SCALE`` (read-modify-write, so smoke
and small results coexist).  See ``docs/performance.md`` for how to
read the file.
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.core.usm import TABLE2_PROFILES, PenaltyProfile
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.sweep import run_grid
from repro.workload.cache import default_cache

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_perf.json"

#: Tolerated slowdown against the committed floor before the ratchet
#: trips (fractional; 0.10 = fail when >10% below the floor).
RATCHET_SLACK = 0.10

#: The committed BENCH_perf.json, captured at import time — the bench
#: tests below rewrite the file as they run, so the ratchet must read
#: the floor before any of them records a fresh number.
_COMMITTED: dict = {}
if BENCH_JSON.exists():
    try:
        _COMMITTED = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        _COMMITTED = {}

GRID_POLICIES = ("unit", "imu", "odu", "qmf", "elastic")
GRID_TRACES = ("med-unif", "med-pos", "med-neg")
GRID_PROFILES = (
    PenaltyProfile.naive(),
    TABLE2_PROFILES["lt1-high-cr"],
    TABLE2_PROFILES["gt1-high-cfs"],
)


def _scale_name() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "smoke")


def _record(section: str, payload: dict) -> None:
    """Merge one measurement into BENCH_perf.json (keyed by scale)."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            data = {}
    data.setdefault(section, {})[_scale_name()] = payload
    data["python"] = platform.python_version()
    BENCH_JSON.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def test_bench_single_run_events_per_sec(benchmark, bench_scale, bench_seed):
    config = ExperimentConfig(
        policy="unit", update_trace="med-unif", seed=bench_seed, scale=bench_scale
    )
    # Warm the cache first so the benchmark measures the event loop, not
    # workload generation.
    default_cache().warm([config])
    report = benchmark.pedantic(
        run_experiment, args=(config,), rounds=3, iterations=1, warmup_rounds=1
    )
    events = report.events_fired
    best = benchmark.stats.stats.min
    events_per_sec = events / best
    benchmark.extra_info["events"] = events
    benchmark.extra_info["events_per_sec"] = round(events_per_sec)
    _record(
        "single_run",
        {
            "seed": bench_seed,
            "events": events,
            "best_seconds": round(best, 4),
            "events_per_sec": round(events_per_sec, 1),
        },
    )
    assert events > 0
    assert report.queries_submitted > 0


def test_bench_null_recorder_overhead(bench_scale, bench_seed):
    """Disabled observability must stay within 2% of the plain run.

    The default path holds the shared ``NULL_RECORDER``: every
    instrumentation site costs one attribute load and an untaken
    branch.  Host noise on ~50 ms runs dwarfs that, so the baseline
    (no ``obs`` config at all) and the explicit null-recorder run are
    timed *interleaved* round by round and compared min-to-min — the
    only stable way to resolve a 2% budget.  The enabled-recorder run
    is measured too, recorded for the docs but not gated.
    """
    import dataclasses
    import time

    from repro.obs.config import ObsConfig

    plain = ExperimentConfig(
        policy="unit", update_trace="med-unif", seed=bench_seed, scale=bench_scale
    )
    null = dataclasses.replace(plain, obs=ObsConfig(enabled=False))
    enabled = dataclasses.replace(plain, obs=ObsConfig(enabled=True))
    # obs is excluded from the workload key, so one warm covers all.
    default_cache().warm([plain])

    def timed(config):
        started = time.perf_counter()
        report = run_experiment(config)
        return time.perf_counter() - started, report

    timed(plain)  # warmup
    # Even interleaved best-of-N swings a few percent on ~50 ms runs;
    # a real regression shows up in *every* trial, noise spikes don't,
    # so the gate is the minimum overhead across independent trials.
    plain_best = null_best = float("inf")
    overhead_pct = float("inf")
    report = None
    for _ in range(3):
        trial_plain = trial_null = float("inf")
        for _ in range(7):
            elapsed, _unused = timed(plain)
            trial_plain = min(trial_plain, elapsed)
            elapsed, report = timed(null)
            trial_null = min(trial_null, elapsed)
        plain_best = min(plain_best, trial_plain)
        null_best = min(null_best, trial_null)
        overhead_pct = min(
            overhead_pct, (trial_null - trial_plain) / trial_plain * 100.0
        )

    events = report.events_fired

    enabled_best = float("inf")
    for _ in range(3):
        elapsed, enabled_report = timed(enabled)
        enabled_best = min(enabled_best, elapsed)

    _record(
        "obs_null",
        {
            "seed": bench_seed,
            "events": events,
            "baseline_events_per_sec": round(events / plain_best, 1),
            "events_per_sec": round(events / null_best, 1),
            "enabled_events_per_sec": round(
                enabled_report.events_fired / enabled_best, 1
            ),
            "overhead_pct": round(overhead_pct, 2),
        },
    )

    assert events > 0
    # Disabled obs must not attach any observability payload.
    assert report.obs_summary is None
    assert overhead_pct <= 2.0, (
        f"NullRecorder path is {overhead_pct:.2f}% slower than the plain "
        f"run ({null_best * 1e3:.1f} ms vs {plain_best * 1e3:.1f} ms best)"
    )


def test_bench_span_build_throughput(bench_scale, bench_seed):
    """Span building must keep up with the enabled-trace event stream.

    One instrumented run supplies the flattened event dicts; the
    measurement is :func:`repro.obs.spans.build_spans` alone (pure
    post-processing — the simulation is not re-run per round).  The
    committed ``spans.<scale>.spans_events_per_sec`` floor gates under
    ``REPRO_BENCH_RATCHET=1`` with the usual 10% slack.
    """
    import dataclasses

    from repro.obs.config import ObsConfig
    from repro.obs.spans import build_spans

    config = ExperimentConfig(
        policy="unit", update_trace="med-unif", seed=bench_seed, scale=bench_scale
    )
    config = dataclasses.replace(
        config,
        obs=ObsConfig(enabled=True, keep_events=True, metrics=False, spans=False),
    )
    default_cache().warm([config])
    report = run_experiment(config)
    events = report.obs_events
    assert events

    build_spans(events)  # warmup
    best = float("inf")
    result = None
    for _ in range(5):
        started = time.perf_counter()
        result = build_spans(events)
        best = min(best, time.perf_counter() - started)
    events_per_sec = len(events) / best
    _record(
        "spans",
        {
            "seed": bench_seed,
            "trace_events": len(events),
            "spans": len(result.spans),
            "best_seconds": round(best, 4),
            "spans_events_per_sec": round(events_per_sec, 1),
        },
    )

    assert result.spans
    assert not result.partial

    if os.environ.get("REPRO_BENCH_RATCHET") != "1":
        return
    floor = _COMMITTED.get("spans", {}).get(_scale_name(), {}).get(
        "spans_events_per_sec"
    )
    if not floor:
        pytest.skip(f"no committed spans floor for scale {_scale_name()!r}")
    assert events_per_sec >= floor * (1.0 - RATCHET_SLACK), (
        f"span building {events_per_sec:,.0f} events/s fell more than "
        f"{RATCHET_SLACK:.0%} below the committed floor {floor:,.0f} "
        f"(scale {_scale_name()!r})"
    )


def test_bench_paired_grid_wall_clock(benchmark, bench_scale, bench_seed):
    reports = benchmark.pedantic(
        run_grid,
        args=(GRID_POLICIES, GRID_TRACES, GRID_PROFILES, bench_scale),
        kwargs={"seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    assert len(reports) == 45
    wall = benchmark.stats.stats.min
    benchmark.extra_info["cells"] = len(reports)
    _record(
        "paired_grid",
        {
            "seed": bench_seed,
            "cells": len(reports),
            "wall_seconds": round(wall, 3),
            "cells_per_sec": round(len(reports) / wall, 2),
        },
    )
    # Paired workloads: every policy saw the identical query stream.
    naive = GRID_PROFILES[0].name or "naive"
    submitted = {
        reports[(policy, "med-unif", naive)].queries_submitted
        for policy in GRID_POLICIES
    }
    assert len(submitted) == 1


def test_bench_ratchet_against_committed_floor(bench_scale, bench_seed):
    """Single-run throughput must not regress >10% below the committed
    floor in ``BENCH_perf.json``.

    Opt-in via ``REPRO_BENCH_RATCHET=1`` (CI sets it; local hosts vary
    too much to gate by default).  The floor is whatever
    ``single_run.<scale>.events_per_sec`` was *committed* — refresh the
    file deliberately when the engine gets faster so the ratchet only
    ever tightens.
    """
    if os.environ.get("REPRO_BENCH_RATCHET") != "1":
        pytest.skip("ratchet disabled; set REPRO_BENCH_RATCHET=1 to gate")
    section = _COMMITTED.get("single_run", {}).get(_scale_name(), {})
    floor = section.get("events_per_sec")
    if not floor:
        pytest.skip(f"no committed single_run floor for scale {_scale_name()!r}")

    config = ExperimentConfig(
        policy="unit", update_trace="med-unif", seed=bench_seed, scale=bench_scale
    )
    default_cache().warm([config])
    run_experiment(config)  # warmup
    best = float("inf")
    events = 0
    for _ in range(5):
        started = time.perf_counter()
        report = run_experiment(config)
        best = min(best, time.perf_counter() - started)
        events = report.events_fired
    measured = events / best
    _record(
        "ratchet",
        {
            "seed": bench_seed,
            "floor_events_per_sec": floor,
            "measured_events_per_sec": round(measured, 1),
            "slack": RATCHET_SLACK,
        },
    )
    assert measured >= floor * (1.0 - RATCHET_SLACK), (
        f"single-run throughput {measured:,.0f} events/s fell more than "
        f"{RATCHET_SLACK:.0%} below the committed floor {floor:,.0f} "
        f"(scale {_scale_name()!r}); if this host is simply slower, "
        f"refresh BENCH_perf.json deliberately instead of shipping a "
        f"regression"
    )
