"""Sensitivity study — the tech-report analysis the paper cites.

Section 3.4 says "sensitivity analysis in [17] has shown that the exact
value of C_du does not have a significant effect"; the tech report
(PITT/CSD/TR-05-128) sweeps the framework's constants.  This bench
sweeps each knob of UNIT one at a time on med-unif and prints the USM
profile, asserting that none of them is a cliff near its default.
"""


from repro.core.unit import UnitConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import ascii_table
from repro.experiments.runner import run_experiment

KNOBS = {
    "c_du": (0.05, 0.1, 0.2, 0.4),
    "c_uu": (0.25, 0.5, 1.0),
    "c_forget": (0.8, 0.9, 0.95),
    "control_period": (0.5, 1.0, 2.0),
    "window": (10.0, 20.0, 40.0),
    "initial_c_flex": (0.1, 0.25, 0.5),
    "access_ticket_scale": (0.5, 1.0, 3.0),
    "max_period_stretch": (30.0, 100.0, 300.0),
}


def run_with(scale, seed, **overrides):
    config = ExperimentConfig(
        policy="unit",
        update_trace="med-unif",
        seed=seed,
        scale=scale,
        unit=UnitConfig(**overrides),
    )
    return run_experiment(config).usm


def test_bench_sensitivity_sweep(benchmark, bench_scale, bench_seed, publish):
    def sweep():
        results = {}
        for knob, values in KNOBS.items():
            results[knob] = {
                value: run_with(bench_scale, bench_seed, **{knob: value})
                for value in values
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for knob, by_value in results.items():
        values = list(by_value.values())
        spread = max(values) - min(values)
        rows.append(
            [
                knob,
                " ".join(f"{v:g}:{usm:+.3f}" for v, usm in by_value.items()),
                f"{spread:.3f}",
            ]
        )
        # No knob should be a cliff around its default at this scale.
        assert spread < 0.25, f"{knob} swings USM by {spread:.3f}: {by_value}"

    publish(
        "sensitivity",
        ascii_table(
            ["knob", "value:USM", "spread"],
            rows,
            title="UNIT constant sensitivity (med-unif)",
        ),
        benchmark,
    )
