"""Performance microbenchmarks of the substrate hot paths.

These are regression guards, not paper artifacts: event loop
throughput, Fenwick-lottery operations, lock-manager handshakes, and a
full end-to-end simulation per policy.
"""

import random

from repro.core.lottery import LotteryScheduler
from repro.core.tickets import TicketBook
from repro.db.locks import LockManager, LockMode
from repro.db.transactions import QueryTransaction, UpdateTransaction
from repro.experiments.config import ExperimentConfig, SCALES
from repro.experiments.runner import run_experiment
from repro.sim.engine import Simulator


def test_bench_event_loop_throughput(benchmark):
    """Schedule-and-fire cost of the bare engine (10k events/round)."""

    def run_events():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1

        for i in range(10_000):
            sim.schedule(float(i % 97) + i * 1e-6, tick)
        sim.run()
        return count

    assert benchmark(run_events) == 10_000


def test_bench_lottery_update_and_sample(benchmark):
    """O(log n) set_weight + sample over 1024 slots (paper's S)."""
    lottery = LotteryScheduler(1024)
    rng = random.Random(0)
    for i in range(1024):
        lottery.set_weight(i, rng.random())

    def churn():
        for i in range(1000):
            lottery.set_weight(i % 1024, rng.random())
            lottery.sample(rng)

    benchmark(churn)


def test_bench_ticket_book_event_stream(benchmark):
    """Ticket maintenance under a mixed query/update event stream."""
    book = TicketBook(1024)
    rng = random.Random(1)
    events = [
        (rng.randrange(1024), rng.random() < 0.7, rng.random())
        for _ in range(5000)
    ]

    def stream():
        for item_id, is_query, value in events:
            if is_query:
                book.on_query_access(item_id, cpu_utilization=value)
            else:
                book.on_update(item_id, update_exec_time=value + 0.01)

    benchmark(stream)


def test_bench_lock_manager_handshakes(benchmark):
    """Grant/conflict/release churn at item granularity."""

    def churn():
        locks = LockManager()
        for round_no in range(500):
            query = QueryTransaction(
                txn_id=round_no * 2 + 1,
                arrival=0.0,
                exec_time=0.1,
                items=(round_no % 32,),
                relative_deadline=10.0,
            )
            update = UpdateTransaction(
                txn_id=round_no * 2 + 2,
                arrival=0.0,
                exec_time=0.1,
                item_id=round_no % 32,
                period=1.0,
            )
            locks.request(query, round_no % 32, LockMode.READ)
            result = locks.request(update, round_no % 32, LockMode.WRITE)
            for victim in result.victims:
                locks.release_all(victim)
            locks.request(update, round_no % 32, LockMode.WRITE)
            locks.release_all(update)
            locks.release_all(query)

    benchmark(churn)


def test_bench_end_to_end_unit(benchmark, bench_seed):
    """Whole-stack run: UNIT on med-unif at smoke scale."""
    config = ExperimentConfig(
        policy="unit", update_trace="med-unif", seed=bench_seed, scale=SCALES["smoke"]
    )
    report = benchmark.pedantic(run_experiment, args=(config,), rounds=1, iterations=1)
    assert report.queries_submitted > 0


def test_bench_end_to_end_imu(benchmark, bench_seed):
    """Whole-stack run: IMU (highest event volume) on med-unif."""
    config = ExperimentConfig(
        policy="imu", update_trace="med-unif", seed=bench_seed, scale=SCALES["smoke"]
    )
    report = benchmark.pedantic(run_experiment, args=(config,), rounds=1, iterations=1)
    assert report.updates_executed == report.update_arrivals
