"""Ablation benches for the design choices DESIGN.md calls out.

Each bench runs UNIT with one mechanism altered and reports the USM
delta on med-unif — the quantitative backing for the choices the paper
leaves implicit (and for our documented deviations).

Covered:
* victim selection: ticket lottery vs uniform-random victim;
* escalating degradation threshold on vs off;
* the system-USM admission check on vs off (under non-naive weights);
* C_du sensitivity (the tech-report study the paper cites);
* 2PL-HP victim restart vs kill.
"""


from repro.core.unit import UnitConfig, UnitPolicy
from repro.core.usm import TABLE2_PROFILES, PenaltyProfile
from repro.db.server import ServerConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
import repro.experiments.runner as runner_mod

from repro.experiments.report import ascii_table


def run_unit(scale, seed, unit_config=None, profile=None, policy_factory=None,
             server_config=None):
    config = ExperimentConfig(
        policy="unit",
        update_trace="med-unif",
        profile=profile or PenaltyProfile.naive(),
        seed=seed,
        scale=scale,
        unit=unit_config,
    )
    original_make = runner_mod.make_policy
    original_server = None
    if policy_factory is not None:
        runner_mod.make_policy = policy_factory
    try:
        if server_config is not None:
            # Patch the ServerConfig used by the runner.
            original_server = runner_mod.ServerConfig
            runner_mod.ServerConfig = lambda **_kwargs: server_config
        return run_experiment(config)
    finally:
        runner_mod.make_policy = original_make
        if original_server is not None:
            runner_mod.ServerConfig = original_server


class UniformVictimUnit(UnitPolicy):
    """Ablation: degrade victims drawn uniformly instead of by lottery."""

    def bind(self, server):
        super().bind(server)
        rng = self._rng
        items = server.items
        modulator = self.modulator

        def uniform_degrade(rounds=1):
            victims = []
            for _ in range(rounds):
                victim = rng.randrange(len(items))
                item = items[victim]
                if item.current_period < modulator.max_stretch * item.ideal_period:
                    item.degrade_period(modulator.c_du)
                    victims.append(victim)
            return victims

        modulator.degrade = uniform_degrade


def test_bench_ablation_victim_selection(benchmark, bench_scale, bench_seed, publish):
    """Ticket lottery must beat blind uniform victim selection."""

    def run_pair():
        lottery = run_unit(bench_scale, bench_seed).usm

        def factory(config, streams):
            return UniformVictimUnit(
                config.unit_config(), streams.stream("unit-lottery")
            )

        uniform = run_unit(bench_scale, bench_seed, policy_factory=factory).usm
        return lottery, uniform

    lottery, uniform = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    text = ascii_table(
        ["victim selection", "USM"],
        [["ticket lottery (paper)", lottery], ["uniform random", uniform]],
        title="Ablation — degradation victim selection (med-unif)",
    )
    publish("ablation_victim_selection", text, benchmark)
    assert lottery > uniform - 0.02


def test_bench_ablation_escalation(benchmark, bench_scale, bench_seed, publish):
    def run_pair():
        on = run_unit(
            bench_scale, bench_seed, UnitConfig(escalate_modulation=True)
        ).usm
        off = run_unit(
            bench_scale, bench_seed, UnitConfig(escalate_modulation=False)
        ).usm
        return on, off

    on, off = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    text = ascii_table(
        ["escalating threshold", "USM"],
        [["on (default)", on], ["off (pure zero-clamp)", off]],
        title="Ablation — escalating degradation pressure (med-unif)",
    )
    publish("ablation_escalation", text, benchmark)


def test_bench_ablation_usm_check(benchmark, bench_scale, bench_seed, publish):
    """The system-USM admission check matters under non-naive weights."""
    profile = TABLE2_PROFILES["lt1-high-cfm"]

    def run_pair():
        with_check = run_unit(
            bench_scale,
            bench_seed,
            UnitConfig(profile=profile, use_usm_check=True),
            profile=profile,
        ).usm
        without = run_unit(
            bench_scale,
            bench_seed,
            UnitConfig(profile=profile, use_usm_check=False),
            profile=profile,
        ).usm
        return with_check, without

    with_check, without = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    text = ascii_table(
        ["admission", "USM (high C_fm weights)"],
        [["deadline + USM check (paper)", with_check], ["deadline check only", without]],
        title="Ablation — system-USM admission check (med-unif)",
    )
    publish("ablation_usm_check", text, benchmark)


def test_bench_ablation_cdu_sensitivity(benchmark, bench_scale, bench_seed, publish):
    """The tech-report claim: the exact C_du value has little effect."""

    def sweep():
        return {
            c_du: run_unit(bench_scale, bench_seed, UnitConfig(c_du=c_du)).usm
            for c_du in (0.05, 0.1, 0.2, 0.4)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    values = list(results.values())
    text = ascii_table(
        ["C_du", "USM"],
        [[c_du, usm] for c_du, usm in results.items()],
        title="Ablation — C_du sensitivity (med-unif)",
    )
    publish("ablation_cdu", text, benchmark)
    assert max(values) - min(values) < 0.15, "C_du should not be a cliff"


def test_bench_ablation_selective_vs_elastic(benchmark, bench_scale, bench_seed, publish):
    """UNIT's selective lottery degradation vs Buttazzo-style uniform
    elastic stretching (the related-work alternative Section 5 cites)."""

    def run_pair():
        unit = run_experiment(
            ExperimentConfig(
                policy="unit", update_trace="med-unif", seed=bench_seed, scale=bench_scale
            )
        ).usm
        elastic = run_experiment(
            ExperimentConfig(
                policy="elastic",
                update_trace="med-unif",
                seed=bench_seed,
                scale=bench_scale,
            )
        ).usm
        return unit, elastic

    unit, elastic = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    text = ascii_table(
        ["update shedding", "USM"],
        [["UNIT (selective lottery)", unit], ["elastic (uniform stretch)", elastic]],
        title="Ablation — selective vs uniform period stretching (med-unif)",
    )
    publish("ablation_elastic", text, benchmark)
    assert unit > elastic - 0.02


def test_bench_ablation_restart_policy(benchmark, bench_scale, bench_seed, publish):
    """2PL-HP victims: restart (paper) vs immediate kill."""

    def run_pair():
        restart = run_unit(bench_scale, bench_seed).usm
        kill = run_unit(
            bench_scale,
            bench_seed,
            server_config=ServerConfig(restart_aborted_queries=False),
        ).usm
        return restart, kill

    restart, kill = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    text = ascii_table(
        ["2PL-HP victim handling", "USM"],
        [["restart (paper)", restart], ["kill immediately", kill]],
        title="Ablation — aborted-query handling (med-unif)",
    )
    publish("ablation_restart", text, benchmark)
    assert restart >= kill - 0.02
