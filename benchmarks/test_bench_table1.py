"""Table 1 — the nine update traces.

Regenerates the volumes x spatial-distributions matrix at the bench
scale and validates the utilization targets and ±0.8 correlations the
paper specifies.
"""

from repro.experiments.tables import render_table1, table1


def test_bench_table1(benchmark, bench_scale, bench_seed, publish):
    rows = benchmark.pedantic(
        table1, args=(bench_scale,), kwargs={"seed": bench_seed}, rounds=1, iterations=1
    )
    assert len(rows) == 9
    for row in rows:
        assert abs(row.actual_utilization - row.target_utilization) <= (
            0.15 * row.target_utilization
        )
    by_name = {row.name: row for row in rows}
    assert by_name["med-pos"].correlation_with_queries > 0.5
    assert by_name["med-neg"].correlation_with_queries < -0.5
    publish("table1", render_table1(rows), benchmark)
