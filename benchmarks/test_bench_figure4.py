"""Figure 4 — naive USM (success ratio) across the nine update traces.

Shape assertions (paper Section 4.3):
* UNIT is at or near the top in every cell (we assert: never beaten by
  more than a small margin, and strictly best at the medium volume for
  the negative correlation);
* QMF falls below ODU under the uniform distribution at medium/high
  volume (its conservatism backfires);
* IMU collapses toward zero as update volume reaches 150 % CPU.
"""

from repro.experiments.figures import figure4, render_figure4

# One-seed wobble allowance.  The smoke horizon (120 s) barely covers
# the controller's warm-up and convergence, so its margin is loose.
# At the low volume all policies compress toward the same level (as in
# the paper's low bars); the decisive cells are the medium/high rows,
# asserted separately below.
NOISE_MARGIN = {"smoke": 0.14, "small": 0.08, "paper": 0.07}


def test_bench_figure4(benchmark, bench_scale, bench_seed, publish):
    data = benchmark.pedantic(
        figure4, args=(bench_scale,), kwargs={"seed": bench_seed}, rounds=1, iterations=1
    )
    assert len(data) == 9

    margin = NOISE_MARGIN.get(bench_scale.name, 0.06)
    for trace, row in data.items():
        best_rival = max(row["imu"], row["odu"], row["qmf"])
        assert row["unit"] >= best_rival - margin, (
            f"UNIT far behind at {trace}: {row}"
        )

    assert data["med-neg"]["unit"] > data["med-neg"]["imu"]
    # At the medium volume UNIT is at the top (within one-seed noise of
    # the strongest baseline, ODU).
    for trace in ("med-unif", "med-pos", "med-neg"):
        best_rival = max(data[trace][p] for p in ("imu", "odu", "qmf"))
        assert data[trace]["unit"] >= best_rival - 0.05, data[trace]
    assert data["med-unif"]["qmf"] < data["med-unif"]["odu"]
    assert data["high-unif"]["imu"] < 0.1
    assert data["high-unif"]["qmf"] < 0.2
    # All policies collapse relative to low volume as updates triple.
    for policy in ("imu", "odu", "qmf", "unit"):
        assert data["high-unif"][policy] <= data["low-unif"][policy] + margin

    publish("figure4", render_figure4(data), benchmark)
