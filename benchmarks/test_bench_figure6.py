"""Figure 6 — outcome-ratio decomposition.

Shape assertions (paper Section 4.5):
* IMU and ODU never reject (no admission control);
* QMF's rejection ratio is the largest among the baselines ("QMF's
  rejection ratio very high");
* UNIT's decomposition *moves with the weights*: under each Fig. 5(a)
  setting, the outcome carrying the dominant penalty is suppressed
  relative to UNIT's other settings.
"""

from repro.experiments.figures import figure6, render_figure6


def test_bench_figure6(benchmark, bench_scale, bench_seed, publish):
    data = benchmark.pedantic(
        figure6, args=(bench_scale,), kwargs={"seed": bench_seed}, rounds=1, iterations=1
    )

    baselines = {bar.label: bar for bar in data["baselines"]}
    assert baselines["IMU"].rejection == 0.0
    assert baselines["ODU"].rejection == 0.0
    assert baselines["QMF"].rejection > max(
        baselines["IMU"].rejection, baselines["ODU"].rejection
    )
    # IMU and ODU achieve 100% freshness by construction.
    assert baselines["IMU"].dsf == 0.0
    assert baselines["ODU"].dsf == 0.0

    unit = {bar.label: bar for bar in data["unit"]}
    high_cr = unit["UNIT high C_r (<1)"]
    high_cfm = unit["UNIT high C_fm (<1)"]
    high_cfs = unit["UNIT high C_fs (<1)"]
    # The dominant-penalty outcome is suppressed under its own setting.
    assert high_cr.rejection <= min(high_cfm.rejection, high_cfs.rejection) + 1e-9
    assert high_cfm.dmf <= min(high_cr.dmf, high_cfs.dmf) + 1e-9
    assert high_cfs.dsf <= min(high_cr.dsf, high_cfm.dsf) + 1e-9

    publish("figure6", render_figure6(data), benchmark)
