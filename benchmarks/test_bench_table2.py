"""Table 2 — the USM weight settings used in Figure 5.

The table itself is static configuration; the benchmark times the USM
accounting machinery those weights drive (a hot path of every run).
"""

import random

from repro.core.usm import TABLE2_PROFILES, UsmAccumulator
from repro.db.transactions import Outcome
from repro.experiments.tables import render_table2, table2

OUTCOMES = list(Outcome)


def test_bench_table2(benchmark, publish):
    profiles = table2()
    assert len(profiles) == 6

    rng = random.Random(0)
    stream = [rng.choice(OUTCOMES) for _ in range(50_000)]

    def account():
        acc = UsmAccumulator(TABLE2_PROFILES["lt1-high-cfm"])
        for outcome in stream:
            acc.record(outcome)
        return acc.average_usm()

    usm = benchmark(account)
    profile = TABLE2_PROFILES["lt1-high-cfm"]
    assert profile.usm_min <= usm <= profile.usm_max
    publish("table2", render_table2(), benchmark)
