"""Shared fixtures for the reproduction benchmarks.

Every ``test_bench_*`` module regenerates one table or figure of the
paper.  The rendered rows/series are printed (run with ``-s`` to see
them live), stored in each benchmark's ``extra_info``, and written to
``benchmarks/out/<name>.txt`` so a plain
``pytest benchmarks/ --benchmark-only`` leaves the artifacts on disk.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``smoke`` (default,
seconds), ``small`` (tens of seconds), or ``paper`` (minutes, 1024
items as in the paper).
"""

import os
from pathlib import Path

import pytest

from repro.experiments.config import SCALES

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def bench_scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    if name not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE={name!r}; pick one of {sorted(SCALES)}")
    return SCALES[name]


@pytest.fixture(scope="session")
def bench_seed():
    return int(os.environ.get("REPRO_BENCH_SEED", "7"))


@pytest.fixture()
def publish():
    """Return a callable that prints and persists a rendered artifact."""

    def _publish(name: str, text: str, benchmark=None):
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print()
        print(text)
        if benchmark is not None:
            benchmark.extra_info["artifact"] = str(OUT_DIR / f"{name}.txt")

    return _publish
