"""Figure 5 — USM sensitivity to non-zero penalty weights (Table 2).

Shape assertions (paper Section 4.4):
* UNIT is stable across the three dominant-weight settings of each
  panel (its USM spread is small) — the headline claim of the section;
* IMU and ODU are hit hardest when deadline misses are dear (high
  C_fm): they cannot reject, so every overload failure costs the
  maximum;
* QMF is hit hardest when rejections are dear (high C_r).
"""

from repro.experiments.figures import figure5, render_figure5


def spread(values):
    return max(values) - min(values)


def test_bench_figure5(benchmark, bench_scale, bench_seed, publish):
    data = benchmark.pedantic(
        figure5, args=(bench_scale,), kwargs={"seed": bench_seed}, rounds=1, iterations=1
    )

    for prefix in ("lt1", "gt1"):
        keys = [key for key in data if key.startswith(prefix)]
        unit_spread = spread([data[key]["unit"] for key in keys])
        imu_spread = spread([data[key]["imu"] for key in keys])
        assert unit_spread < imu_spread, (
            f"UNIT should be the stable policy on panel {prefix}"
        )

    # IMU/ODU are weight-insensitive in behaviour, so high C_fm (their
    # dominant failure) is their worst setting.
    assert data["gt1-high-cfm"]["imu"] == min(
        data[k]["imu"] for k in data if k.startswith("gt1")
    )
    # QMF's rejections make high C_r its worst setting.
    assert data["gt1-high-cr"]["qmf"] == min(
        data[k]["qmf"] for k in data if k.startswith("gt1")
    )
    # UNIT is the best policy when misses are the dominant cost.
    assert data["gt1-high-cfm"]["unit"] == max(data["gt1-high-cfm"].values())
    assert data["lt1-high-cfm"]["unit"] == max(data["lt1-high-cfm"].values())

    publish("figure5", render_figure5(data), benchmark)
